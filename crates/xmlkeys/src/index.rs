//! The prepared form of a key set: compiled paths plus an assured-attribute
//! index.
//!
//! The string-based entry points of this crate ([`crate::implies`],
//! [`crate::attribute_assured`], …) re-split every path expression and
//! re-enumerate every target split on each call.  A [`KeyIndex`] does that
//! work once per key set Σ:
//!
//! * every key's context, target and absolute-target expressions are
//!   compiled ([`xmlprop_xmlpath::CompiledExpr`]) against one shared
//!   [`LabelUniverse`], so containment probes are allocation-free id-slice
//!   comparisons;
//! * the *target-to-context* split pairs `(Q/A, B)` of each key are
//!   compiled once (lazily, on the key's first derivation probe — keys that
//!   an implication query rejects on its attribute tests, and `exist()`
//!   queries, never pay for them), so the single-key derivation rule of
//!   [`crate::implies`] is a scan over ready-made expression pairs;
//! * an attribute → keys index answers `exist()` questions
//!   ([`KeyIndex::attribute_assured`]) without rescanning Σ for the
//!   attribute name.
//!
//! Probe expressions (positions from a table tree, candidate keys) are
//! compiled through the same universe — either by interning
//! ([`KeyIndex::compile`], [`KeyIndex::prepare`]) or read-only with
//! temporary scratch ids ([`KeyIndex::prepare_ref`]), which keeps `&self`
//! query methods available to facades.
//!
//! The index also carries the prepared side of **document validation**
//! (Definition 2.1): [`KeyIndex::index_document`] builds a
//! [`xmlprop_xmltree::DocIndex`] against the shared universe, and
//! [`KeyIndex::violations`] / [`KeyIndex::satisfies`] check every key of Σ
//! over it with compiled path evaluation and hashed interned-value key
//! tuples — the string walkers of [`crate::satisfies`] remain the one-shot
//! facades and differential baselines.

use crate::satisfy::Violation;
use crate::{KeySet, XmlKey};
use std::collections::{BTreeMap, HashMap};
use std::sync::OnceLock;
use xmlprop_xmlpath::{
    CompiledAtom, CompiledExpr, EvalScratch, LabelId, LabelUniverse, PathCompiler, PathExpr,
};
use xmlprop_xmltree::{DocIndex, Document};

/// One key of Σ in compiled form.
#[derive(Debug, Clone)]
pub struct IndexedKey {
    /// The key's attribute ids, sorted by id.
    attrs: Vec<LabelId>,
    /// The key's attribute ids in the key's own (lexicographic
    /// [`XmlKey::key_attrs`]) order — the order the satisfaction semantics
    /// and violation reports enumerate attributes in.
    val_attrs: Vec<LabelId>,
    /// The compiled context path `Q`.
    context: CompiledExpr,
    /// The compiled target path `Q'`.
    target: CompiledExpr,
    /// The compiled absolute target `Q/Q'`.
    absolute: CompiledExpr,
    /// For every split `Q' = A/B` of the target: the compiled derived
    /// context `Q/A` and the compiled remainder `B` (the quantification of
    /// the *target-to-context* rule).  Compiled on first use — entirely at
    /// the interned-atom level, so no universe access is needed (an
    /// `OnceLock` keeps the index `Send + Sync`).
    splits: OnceLock<Vec<(CompiledExpr, CompiledExpr)>>,
}

impl IndexedKey {
    /// The key's attribute ids, sorted.
    pub fn attrs(&self) -> &[LabelId] {
        &self.attrs
    }

    /// The key's attribute ids in the key's own order — the order the
    /// satisfaction semantics and violation reports enumerate attributes
    /// in.
    pub fn val_attrs(&self) -> &[LabelId] {
        &self.val_attrs
    }

    /// The compiled context path `Q`.
    pub fn context(&self) -> &CompiledExpr {
        &self.context
    }

    /// The compiled target path `Q'`.
    pub fn target(&self) -> &CompiledExpr {
        &self.target
    }

    /// The compiled absolute target `Q/Q'`.
    pub fn absolute(&self) -> &CompiledExpr {
        &self.absolute
    }

    /// The compiled `(Q/A, B)` split pairs, built on first use.
    fn splits(&self) -> &[(CompiledExpr, CompiledExpr)] {
        self.splits
            .get_or_init(|| compiled_splits(&self.context, &self.target))
    }
}

/// All ways of writing `target` as a concatenation `A/B`, returned as the
/// derived-context pairs `(context ⋅ A, B)` — the compiled counterpart of
/// [`xmlprop_xmlpath::PathExpr::splits`] followed by the context concat.
/// Splits are taken at every atom boundary; a `//` atom may in addition be
/// shared by both sides (`A// ⋅ //B ≡ A//B`).  Duplicates are dropped.
fn compiled_splits(
    context: &CompiledExpr,
    target: &CompiledExpr,
) -> Vec<(CompiledExpr, CompiledExpr)> {
    let atoms = target.atoms();
    let n = atoms.len();
    let mut parts: Vec<(CompiledExpr, CompiledExpr)> = Vec::with_capacity(n + 2);
    let mut push = |a: CompiledExpr, b: CompiledExpr| {
        if !parts.iter().any(|(pa, pb)| *pa == a && *pb == b) {
            parts.push((a, b));
        }
    };
    for i in 0..=n {
        push(
            CompiledExpr::from_atoms(atoms[..i].iter().copied()),
            CompiledExpr::from_atoms(atoms[i..].iter().copied()),
        );
    }
    for (i, atom) in atoms.iter().enumerate() {
        if *atom == CompiledAtom::AnyPath {
            push(
                CompiledExpr::from_atoms(atoms[..=i].iter().copied()),
                CompiledExpr::from_atoms(atoms[i..].iter().copied()),
            );
        }
    }
    parts
        .into_iter()
        .map(|(a, b)| (context.concat(&a), b))
        .collect()
}

/// A candidate key `φ` compiled for repeated implication queries against
/// one [`KeyIndex`].
#[derive(Debug, Clone)]
pub struct PreparedKey {
    context: CompiledExpr,
    target: CompiledExpr,
    absolute: CompiledExpr,
    attrs: Vec<LabelId>,
}

/// The prepared form of a [`KeySet`]; see the module docs.
#[derive(Debug, Clone)]
pub struct KeyIndex {
    universe: LabelUniverse,
    keys: Vec<IndexedKey>,
    /// For every attribute id: the keys of Σ whose attribute set contains
    /// it — the assured-positions index behind `exist()`.
    assured: Vec<Vec<u32>>,
}

impl KeyIndex {
    /// Prepares a key set: compiles every key and builds the assured index.
    pub fn new(sigma: &KeySet) -> Self {
        let mut universe = LabelUniverse::new();
        let mut keys = Vec::with_capacity(sigma.len());
        for key in sigma.iter() {
            let val_attrs: Vec<LabelId> =
                key.key_attrs().iter().map(|a| universe.intern(a)).collect();
            let mut attrs = val_attrs.clone();
            attrs.sort_unstable();
            let context = universe.compile(key.context());
            let target = universe.compile(key.target());
            let absolute = context.concat(&target);
            keys.push(IndexedKey {
                attrs,
                val_attrs,
                context,
                target,
                absolute,
                splits: OnceLock::new(),
            });
        }
        let mut assured = vec![Vec::new(); universe.len()];
        for (i, key) in keys.iter().enumerate() {
            for a in &key.attrs {
                assured[a.index()].push(i as u32);
            }
        }
        KeyIndex {
            universe,
            keys,
            assured,
        }
    }

    /// The shared label universe (element tags and attribute names alike).
    pub fn universe(&self) -> &LabelUniverse {
        &self.universe
    }

    /// The compiled keys, in Σ order.
    pub fn keys(&self) -> &[IndexedKey] {
        &self.keys
    }

    /// The number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if Σ is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Compiles a probe expression, interning any new labels it mentions.
    pub fn compile(&mut self, expr: &PathExpr) -> CompiledExpr {
        self.universe.compile(expr)
    }

    /// Interns a single label (element tag or `@attr` name) into the shared
    /// universe, returning its id.
    pub fn intern_label(&mut self, label: &str) -> LabelId {
        self.universe.intern(label)
    }

    /// The id of an attribute name (with or without the leading `@`), if
    /// any key of Σ or any interned probe mentions it.  The `@`-prefixed
    /// form resolves without allocating; the bare form allocates the
    /// prefixed name once for the lookup.
    pub fn attr_id(&self, attr: &str) -> Option<LabelId> {
        if attr.starts_with('@') {
            self.universe.lookup(attr)
        } else {
            self.universe.lookup(&format!("@{attr}"))
        }
    }

    /// Compiles a candidate key for repeated implication queries, interning
    /// its labels.
    pub fn prepare(&mut self, phi: &XmlKey) -> PreparedKey {
        let context = self.universe.compile(phi.context());
        let target = self.universe.compile(phi.target());
        let absolute = context.concat(&target);
        let mut attrs: Vec<LabelId> = phi
            .key_attrs()
            .iter()
            .map(|a| self.universe.intern(a))
            .collect();
        attrs.sort_unstable();
        PreparedKey {
            context,
            target,
            absolute,
            attrs,
        }
    }

    /// Compiles a candidate key **without** interning: labels unknown to
    /// the universe receive consistent temporary ids, which keeps the
    /// containment and assurance answers exact (an unknown label can match
    /// nothing of Σ).
    pub fn prepare_ref(&self, phi: &XmlKey) -> PreparedKey {
        let mut scratch = BTreeMap::new();
        let context = self.universe.compile_scratch(phi.context(), &mut scratch);
        let target = self.universe.compile_scratch(phi.target(), &mut scratch);
        let absolute = context.concat(&target);
        let mut attrs: Vec<LabelId> = phi
            .key_attrs()
            .iter()
            .map(|a| self.universe.lookup_scratch(a, &mut scratch))
            .collect();
        attrs.sort_unstable();
        PreparedKey {
            context,
            target,
            absolute,
            attrs,
        }
    }

    /// True if some key of Σ assures a unique `@attr` on every node of
    /// `[[position]]` — the prepared `exist()` of Fig. 5 for one attribute.
    /// Ids outside the assured index (scratch ids, probe-only labels) are
    /// assured nowhere.
    pub fn attribute_assured(&self, position: &CompiledExpr, attr: LabelId) -> bool {
        self.assured.get(attr.index()).is_some_and(|keys| {
            keys.iter()
                .any(|&k| position.contained_in(&self.keys[k as usize].absolute))
        })
    }

    /// The prepared `exist(P, β)`: every attribute of `attrs` is assured at
    /// `position`.
    pub fn attributes_assured(&self, position: &CompiledExpr, attrs: &[LabelId]) -> bool {
        attrs.iter().all(|&a| self.attribute_assured(position, a))
    }

    /// Key implication `Σ ⊨ φ` for a prepared candidate key.
    pub fn implies(&self, phi: &PreparedKey) -> bool {
        self.implies_parts(&phi.context, &phi.target, &phi.absolute, &phi.attrs)
    }

    /// Key implication `Σ ⊨ (context, (target, attrs))` from compiled
    /// parts; `absolute` must be `context ⋅ target` (callers that walk a
    /// table tree already hold it — e.g. the position of a descendant
    /// variable).  `attrs` must be sorted by id and duplicate-free.
    ///
    /// This is the same rule system as [`crate::implies`] (epsilon,
    /// attribute uniqueness, single-key derivation via the precompiled
    /// splits), executed over the prepared state.
    pub fn implies_parts(
        &self,
        context: &CompiledExpr,
        target: &CompiledExpr,
        absolute: &CompiledExpr,
        attrs: &[LabelId],
    ) -> bool {
        // Rule 1: epsilon.
        if target.is_epsilon() {
            return self.attributes_assured(context, attrs);
        }

        // Rule 1b: attribute uniqueness.
        if let [CompiledAtom::Label(label)] = target.atoms() {
            if self.universe.is_attr(*label)
                && self.attribute_assured(context, *label)
                && self.attributes_assured(absolute, attrs)
            {
                return true;
            }
        }

        // Rule 2: single-key derivation over the precompiled splits.
        for k in &self.keys {
            // Sk ⊆ S.
            if !k.attrs.iter().all(|a| attrs.binary_search(a).is_ok()) {
                continue;
            }
            // Extra attributes of S \ Sk must be assured on the target
            // position.
            let extras_ok = attrs
                .iter()
                .filter(|a| k.attrs.binary_search(a).is_err())
                .all(|&a| self.attribute_assured(absolute, a));
            if !extras_ok {
                continue;
            }
            for (derived_context, b) in k.splits() {
                if context.contained_in(derived_context) && target.contained_in(b) {
                    return true;
                }
            }
        }
        false
    }

    /// The prepared form of [`crate::node_unique_under`]:
    /// `Σ ⊨ (context, (target, {}))`, with `absolute = context ⋅ target`
    /// supplied by the caller.
    pub fn node_unique_under(
        &self,
        context: &CompiledExpr,
        target: &CompiledExpr,
        absolute: &CompiledExpr,
    ) -> bool {
        self.implies_parts(context, target, absolute, &[])
    }

    // ------------------------------------------------------------------
    // Document validation (Definition 2.1 over a prepared DocIndex)
    // ------------------------------------------------------------------

    /// Builds a [`DocIndex`] for `doc` against this index's universe, so
    /// compiled key paths evaluate directly over it.  Ids are append-only:
    /// indexing a document never invalidates existing compiled state, and
    /// several documents can be indexed against one `KeyIndex` in turn.
    pub fn index_document(&mut self, doc: &Document) -> DocIndex {
        DocIndex::build(doc, &mut self.universe)
    }

    /// All violations of every key of Σ in `doc`, in Σ order (empty iff the
    /// document satisfies the whole key set) — the prepared counterpart of
    /// running [`crate::violations`] per key.  `index` must have been built
    /// from `doc` against this universe ([`KeyIndex::index_document`]).
    ///
    /// All keys are validated in a single pass of prepared machinery: the
    /// compiled context/target expressions evaluate over the `DocIndex`
    /// (document order, no `BTreeSet`s), key tuples are compared as hashed
    /// interned-value id vectors instead of `BTreeMap<Vec<String>, _>`
    /// lookups, and all scratch state is reused across contexts and keys.
    pub fn violations(&self, doc: &Document, index: &DocIndex) -> Vec<Violation> {
        index.debug_assert_current(doc);
        let mut out = Vec::new();
        let mut scratch = ValidateScratch::default();
        for k in 0..self.keys.len() {
            self.collect_violations(k, doc, index, &mut scratch, Some(&mut out));
        }
        out
    }

    /// The violations of the `k`-th key of Σ alone (same order as
    /// [`crate::violations`] of that key).
    pub fn violations_of(&self, k: usize, doc: &Document, index: &DocIndex) -> Vec<Violation> {
        index.debug_assert_current(doc);
        let mut out = Vec::new();
        let mut scratch = ValidateScratch::default();
        self.collect_violations(k, doc, index, &mut scratch, Some(&mut out));
        out
    }

    /// True if `doc ⊨ Σ` (every key of the set, Definition 2.1) — the
    /// prepared counterpart of [`crate::satisfies_all`].  Stops at the
    /// first violation instead of collecting them.
    pub fn satisfies(&self, doc: &Document, index: &DocIndex) -> bool {
        index.debug_assert_current(doc);
        let mut scratch = ValidateScratch::default();
        (0..self.keys.len()).all(|k| !self.collect_violations(k, doc, index, &mut scratch, None))
    }

    /// The shared validation walk: evaluates the key's contexts and targets
    /// over the `DocIndex` and checks conditions (1) and (2) of
    /// Definition 2.1 with interned-value tuples.  With `out = Some(..)`
    /// every violation is reported; with `None` it stops at the first.
    /// Returns whether any violation was found.
    fn collect_violations(
        &self,
        k: usize,
        doc: &Document,
        index: &DocIndex,
        scratch: &mut ValidateScratch,
        mut out: Option<&mut Vec<Violation>>,
    ) -> bool {
        let key = &self.keys[k];
        let mut found = false;
        key.context().evaluate_positions(
            index,
            index.position(doc.root()),
            &mut scratch.eval,
            &mut scratch.contexts,
        );
        for &context_pos in &scratch.contexts {
            key.target().evaluate_positions(
                index,
                context_pos,
                &mut scratch.eval,
                &mut scratch.targets,
            );
            scratch.seen.clear();
            for &target_pos in &scratch.targets {
                scratch.tuple.clear();
                let mut complete = true;
                for &attr in &key.val_attrs {
                    // Count the target's attribute children named `attr`;
                    // condition (1) demands exactly one.
                    let mut count = 0u32;
                    let mut value = 0u32;
                    for child in index.children_at(target_pos) {
                        if index.label_at(child) == attr && index.kind_at(child).is_attribute() {
                            count += 1;
                            value = index.value_id_at(child).unwrap_or(0);
                        }
                    }
                    match count {
                        1 => scratch.tuple.push(value),
                        0 => {
                            complete = false;
                            found = true;
                            match out.as_deref_mut() {
                                Some(sink) => sink.push(Violation::MissingAttribute {
                                    context: index.node_at(context_pos),
                                    target: index.node_at(target_pos),
                                    attribute: self.universe.name(attr).to_string(),
                                }),
                                None => return true,
                            }
                        }
                        _ => {
                            complete = false;
                            found = true;
                            match out.as_deref_mut() {
                                Some(sink) => sink.push(Violation::DuplicateAttribute {
                                    context: index.node_at(context_pos),
                                    target: index.node_at(target_pos),
                                    attribute: self.universe.name(attr).to_string(),
                                }),
                                None => return true,
                            }
                        }
                    }
                }
                if !complete {
                    continue;
                }
                // Condition (2): no two distinct targets under this context
                // agree on the whole key tuple.
                match scratch.seen.get(&scratch.tuple) {
                    Some(&first_pos) => {
                        found = true;
                        match out.as_deref_mut() {
                            Some(sink) => sink.push(Violation::DuplicateKeyValue {
                                context: index.node_at(context_pos),
                                first: index.node_at(first_pos),
                                second: index.node_at(target_pos),
                                values: self.tuple_strings(key, doc, index, target_pos),
                            }),
                            None => return true,
                        }
                    }
                    None => {
                        scratch.seen.insert(scratch.tuple.clone(), target_pos);
                    }
                }
            }
        }
        found
    }

    /// The actual key-attribute value strings of a complete target, in
    /// key-attribute order — only materialized on the (rare) violation
    /// reporting path.
    fn tuple_strings(
        &self,
        key: &IndexedKey,
        doc: &Document,
        index: &DocIndex,
        target_pos: u32,
    ) -> Vec<String> {
        key.val_attrs
            .iter()
            .map(|&attr| {
                index
                    .children_at(target_pos)
                    .find(|&c| index.label_at(c) == attr && index.kind_at(c).is_attribute())
                    .and_then(|c| doc.text_value(index.node_at(c)))
                    .unwrap_or("")
                    .to_string()
            })
            .collect()
    }

    /// [`KeyIndex::tuple_strings`] addressed by key position — the
    /// violation-reporting path of the incremental validator.
    pub(crate) fn tuple_strings_at(
        &self,
        k: usize,
        doc: &Document,
        index: &DocIndex,
        target_pos: u32,
    ) -> Vec<String> {
        self.tuple_strings(&self.keys[k], doc, index, target_pos)
    }
}

/// Reusable scratch state for the validation walk: frontier vectors for
/// context/target evaluation, the current value tuple, and the
/// tuple → first-target hash map of condition (2).
#[derive(Debug, Default)]
struct ValidateScratch {
    eval: EvalScratch,
    contexts: Vec<u32>,
    targets: Vec<u32>,
    tuple: Vec<u32>,
    seen: HashMap<Vec<u32>, u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example_2_1_keys;

    fn key(s: &str) -> XmlKey {
        XmlKey::parse(s).unwrap()
    }

    #[test]
    fn index_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KeyIndex>();
        assert_send_sync::<PreparedKey>();
    }

    #[test]
    fn index_shape() {
        let sigma = example_2_1_keys();
        let index = KeyIndex::new(&sigma);
        assert_eq!(index.len(), 7);
        assert!(!index.is_empty());
        assert!(!index.universe().is_empty());
        // K1 = (ε, (//book, {@isbn})): context ε, one attribute.
        let k1 = &index.keys()[0];
        assert!(k1.context().is_epsilon());
        assert_eq!(k1.attrs().len(), 1);
        assert!(!k1.target().is_epsilon());
        assert_eq!(k1.absolute(), &k1.context().concat(k1.target()));
        // Attribute lookups resolve with and without the `@`.
        assert!(index.attr_id("@isbn").is_some());
        assert_eq!(index.attr_id("isbn"), index.attr_id("@isbn"));
        assert!(index.attr_id("nope").is_none());
    }

    #[test]
    fn prepared_implication_matches_the_examples() {
        let sigma = example_2_1_keys();
        let index = KeyIndex::new(&sigma);
        for (probe, expect) in [
            ("(//book/author, (contact, {}))", true),
            ("(//, (book, {@isbn}))", true),
            ("(//book, (chapter, {@number}))", true),
            ("(ε, (//book/chapter, {@number}))", false),
            ("(//book, (chapter/name, {}))", false),
            ("(//book, (@isbn, {}))", true),
            ("(//book, (@lang, {}))", false),
        ] {
            let phi = index.prepare_ref(&key(probe));
            assert_eq!(index.implies(&phi), expect, "{probe}");
        }
    }

    #[test]
    fn interning_and_scratch_preparation_agree() {
        let sigma = example_2_1_keys();
        let probes = [
            "(//book, (title, {}))",
            "(//unknown/label, (mystery, {@ghost}))",
            "(ε, (ε, {@isbn}))",
            "(//book, (chapter, {@number, @ghost}))",
        ];
        for probe in probes {
            let phi = key(probe);
            let by_ref = {
                let index = KeyIndex::new(&sigma);
                let p = index.prepare_ref(&phi);
                index.implies(&p)
            };
            let by_intern = {
                let mut index = KeyIndex::new(&sigma);
                let p = index.prepare(&phi);
                index.implies(&p)
            };
            assert_eq!(by_ref, by_intern, "{probe}");
        }
    }

    #[test]
    fn prepared_validation_matches_the_oracle_on_the_samples() {
        use xmlprop_xmltree::sample::{fig1, fig1_duplicate_isbn};
        for doc in [fig1(), fig1_duplicate_isbn()] {
            let sigma = example_2_1_keys();
            let mut index = KeyIndex::new(&sigma);
            let dix = index.index_document(&doc);
            let mut oracle_all = Vec::new();
            for (k, key) in sigma.iter().enumerate() {
                let oracle = crate::violations(&doc, key);
                assert_eq!(index.violations_of(k, &doc, &dix), oracle, "{key}");
                oracle_all.extend(oracle);
            }
            assert_eq!(index.violations(&doc, &dix), oracle_all);
            assert_eq!(
                index.satisfies(&doc, &dix),
                crate::satisfies_all(&doc, sigma.iter())
            );
        }
    }

    #[test]
    fn prepared_validation_reports_every_violation_kind() {
        use xmlprop_xmltree::ElementBuilder;
        // One book with no isbn, one with two, two sharing a value.
        let mut doc = ElementBuilder::new("r")
            .child(ElementBuilder::new("book"))
            .child(
                ElementBuilder::new("book")
                    .attr("isbn", "1")
                    .attr("isbn", "2"),
            )
            .child(ElementBuilder::new("book").attr("isbn", "3"))
            .child(ElementBuilder::new("book").attr("isbn", "3"))
            .build();
        // Mutate out of NodeId order to exercise the DFS numbering path.
        let first_book = doc.element_children(doc.root()).next().unwrap();
        doc.add_element(first_book, "title");
        assert!(!doc.ids_in_document_order());

        let sigma = example_2_1_keys();
        let mut index = KeyIndex::new(&sigma);
        let dix = index.index_document(&doc);
        let k1 = index.violations_of(0, &doc, &dix);
        assert_eq!(k1, crate::violations(&doc, sigma.iter().next().unwrap()));
        assert!(matches!(k1[0], Violation::MissingAttribute { .. }));
        assert!(matches!(k1[1], Violation::DuplicateAttribute { .. }));
        assert!(
            matches!(k1[2], Violation::DuplicateKeyValue { ref values, .. } if values == &vec!["3".to_string()])
        );
        assert!(!index.satisfies(&doc, &dix));
    }

    #[test]
    fn incomplete_key_tuples_never_count_as_duplicates() {
        use xmlprop_xmltree::ElementBuilder;
        // Two books both missing @isbn: their (absent) key tuples must not
        // hash equal — a null-bearing tuple is exempt from condition (2),
        // so each is a MissingAttribute, never a DuplicateKeyValue.
        let doc = ElementBuilder::new("r")
            .child(ElementBuilder::new("book"))
            .child(ElementBuilder::new("book"))
            .build();
        let sigma = example_2_1_keys();
        let mut index = KeyIndex::new(&sigma);
        let dix = index.index_document(&doc);
        let k1 = index.violations_of(0, &doc, &dix);
        assert_eq!(k1.len(), 2);
        assert!(k1
            .iter()
            .all(|v| matches!(v, Violation::MissingAttribute { .. })));
        assert!(!k1
            .iter()
            .any(|v| matches!(v, Violation::DuplicateKeyValue { .. })));
    }

    #[test]
    fn validation_scales_across_multiple_documents_per_index() {
        use xmlprop_xmltree::ElementBuilder;
        let sigma = example_2_1_keys();
        let mut index = KeyIndex::new(&sigma);
        let good = ElementBuilder::new("r")
            .child(ElementBuilder::new("book").attr("isbn", "1"))
            .build();
        let bad = ElementBuilder::new("r")
            .child(ElementBuilder::new("book").attr("isbn", "1"))
            .child(ElementBuilder::new("book").attr("isbn", "1"))
            .build();
        let good_ix = index.index_document(&good);
        let bad_ix = index.index_document(&bad);
        assert!(index.satisfies(&good, &good_ix));
        assert!(!index.satisfies(&bad, &bad_ix));
        assert_eq!(index.violations(&bad, &bad_ix).len(), 1);
    }

    #[test]
    fn assured_index_answers_exist_queries() {
        let sigma = example_2_1_keys();
        let mut index = KeyIndex::new(&sigma);
        let book = index.compile(&"//book".parse().unwrap());
        let chapter = index.compile(&"//book/chapter".parse().unwrap());
        let isbn = index.attr_id("@isbn").unwrap();
        let number = index.attr_id("@number").unwrap();
        assert!(index.attribute_assured(&book, isbn));
        assert!(!index.attribute_assured(&book, number));
        assert!(index.attribute_assured(&chapter, number));
        assert!(index.attributes_assured(&chapter, &[number]));
        assert!(!index.attributes_assured(&chapter, &[number, isbn]));
        // Ids outside the assured index are assured nowhere.
        assert!(!index.attribute_assured(&book, LabelId(9999)));
    }
}

#[cfg(test)]
mod validation_proptests {
    use super::*;
    use proptest::prelude::*;

    /// Builds a document from a mutation script: each step appends an
    /// element, attribute or text node under a pseudo-randomly chosen
    /// earlier element — deliberately exercising out-of-NodeId-order
    /// construction and duplicate attributes (which the paper's model
    /// allows).
    fn build_doc(steps: &[(u8, u8, u8)]) -> Document {
        let mut doc = Document::new("r");
        let mut elements = vec![doc.root()];
        for &(parent, kind, which) in steps {
            let parent = elements[parent as usize % elements.len()];
            match kind % 4 {
                0 | 1 => {
                    let label = ["a", "b", "c"][which as usize % 3];
                    elements.push(doc.add_element(parent, label));
                }
                2 => {
                    let name = ["x", "y"][which as usize % 2];
                    let value = ["0", "1", "2"][which as usize % 3];
                    doc.add_attribute(parent, name, value);
                }
                _ => {
                    doc.add_text(parent, ["t0", "t1"][which as usize % 2]);
                }
            }
        }
        doc
    }

    fn key_strategy() -> impl Strategy<Value = XmlKey> {
        let seg = prop_oneof![Just("a"), Just("b"), Just("c")];
        (
            prop::collection::vec(seg.clone(), 0..3),
            prop_oneof![Just(true), Just(false)],
            prop::collection::vec(seg, 1..3),
            prop::collection::vec(prop_oneof![Just("x"), Just("y")], 0..3),
        )
            .prop_map(|(ctx, ctx_desc, tgt, attrs)| {
                let mut context = PathExpr::epsilon();
                for (i, l) in ctx.iter().enumerate() {
                    context = if i == 0 && ctx_desc {
                        context.descendant(*l)
                    } else {
                        context.child(*l)
                    };
                }
                let mut target = PathExpr::epsilon();
                for l in &tgt {
                    target = target.child(*l);
                }
                XmlKey::new(context, target, attrs)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

        /// The prepared validator agrees bit-for-bit with the string oracle
        /// (`crate::violations`) on random documents and random key sets —
        /// including documents whose NodeId order diverges from document
        /// order.
        #[test]
        fn prepared_validation_matches_oracle_on_random_documents(
            steps in prop::collection::vec((0u8..16, 0u8..4, 0u8..6), 0..40),
            keys in prop::collection::vec(key_strategy(), 1..5),
        ) {
            let doc = build_doc(&steps);
            let sigma = KeySet::from_keys(keys);
            let mut index = KeyIndex::new(&sigma);
            let dix = index.index_document(&doc);
            let mut oracle_all = Vec::new();
            for (k, key) in sigma.iter().enumerate() {
                let oracle = crate::violations(&doc, key);
                prop_assert_eq!(
                    index.violations_of(k, &doc, &dix),
                    oracle.clone(),
                    "key {}", key
                );
                oracle_all.extend(oracle);
            }
            prop_assert_eq!(index.violations(&doc, &dix), oracle_all);
            prop_assert_eq!(
                index.satisfies(&doc, &dix),
                crate::satisfies_all(&doc, sigma.iter())
            );
            // Sanity: the index numbering really is document order.
            let order: Vec<_> = dix.nodes_in_document_order().collect();
            prop_assert_eq!(order, doc.all_nodes());
        }
    }
}
