//! Incremental key validation under document deltas.
//!
//! [`IncrementalValidator`] keeps, per key of Σ, the full result of the
//! last validation in updatable form: the context set, each context's
//! target list, and per `(context, target)` pair the probe result (the
//! condition-(1) violations and the hashed interned-value key tuple).
//! After an edit it re-probes only what the edit can have changed.
//!
//! The locality argument: all targets of a context `c`, and all the
//! attribute children their tuples are built from, live inside
//! `subtree(c)`; a delta changes subtree content only for the
//! [`AppliedDelta::dirty_node`] and its ancestors (plus freshly inserted
//! nodes, which can have no cached state).  So a cached context whose node
//! is outside that ancestor chain is reused wholesale — violations and
//! all — and within a recomputed context, cached target probes are reused
//! for targets outside the chain.  Context *sets* are re-evaluated from
//! the patched [`DocIndex`] every time (a cheap postings scan), which is
//! what makes contexts appear and disappear correctly under structural
//! edits.
//!
//! The result is bit-for-bit the list [`KeyIndex::violations`] would
//! produce from scratch on the mutated document — same violations, same
//! order — which the differential proptests pin.

use crate::index::KeyIndex;
use crate::satisfy::Violation;
use std::collections::{HashMap, HashSet};
use xmlprop_xmlpath::EvalScratch;
use xmlprop_xmltree::{AppliedDelta, DocIndex, Document, NodeId};

/// Delta-maintained validation state for one document against one
/// [`KeyIndex`]; see the module docs.
#[derive(Debug)]
pub struct IncrementalValidator {
    /// Per key of Σ, in Σ order.
    keys: Vec<KeyState>,
    /// [`Document::epoch`] the state is current for.
    epoch: u64,
    scratch: Scratch,
}

/// Updatable validation state of one key.
#[derive(Debug, Default)]
struct KeyState {
    /// Current contexts, in document order (the assembly order of
    /// [`IncrementalValidator::violations`]).
    contexts: Vec<NodeId>,
    /// Context → its targets in document order.
    targets: HashMap<NodeId, Vec<NodeId>>,
    /// `(context, target)` → cached probe result.
    entries: HashMap<(NodeId, NodeId), TargetEntry>,
    /// Context → its violations in canonical order; contexts with no
    /// violations are absent.
    violations: HashMap<NodeId, Vec<Violation>>,
}

/// Cached per-target probe: condition (1) violations plus the interned
/// key tuple (`None` when an attribute was missing or duplicated).
#[derive(Debug)]
struct TargetEntry {
    cond1: Vec<Violation>,
    tuple: Option<Vec<u32>>,
}

#[derive(Debug, Default)]
struct Scratch {
    eval: EvalScratch,
    /// Context positions of the key being refreshed.
    cpos: Vec<u32>,
    /// Target positions of the context being recomputed.
    tpos: Vec<u32>,
    /// Condition (2): tuple → first target carrying it.
    seen: HashMap<Vec<u32>, NodeId>,
}

impl IncrementalValidator {
    /// Builds the full validation state for `doc` (equivalent to one
    /// from-scratch [`KeyIndex::violations`] pass, stored in updatable
    /// form).  `index` must be current for `doc` and built against an
    /// extension of the key universe.
    pub fn new(keys: &KeyIndex, doc: &Document, index: &DocIndex) -> Self {
        index.debug_assert_current(doc);
        let mut validator = IncrementalValidator {
            keys: (0..keys.len()).map(|_| KeyState::default()).collect(),
            epoch: doc.epoch(),
            scratch: Scratch::default(),
        };
        for k in 0..keys.len() {
            validator.refresh_key(keys, k, doc, index, None);
        }
        validator
    }

    /// Adjusts the state for one applied delta.  Call order per edit:
    /// [`Document::apply`], then [`DocIndex::apply_delta`], then this —
    /// the index must already be patched, and the validator must have
    /// seen every earlier delta (both debug-asserted via epochs).
    pub fn apply(
        &mut self,
        keys: &KeyIndex,
        doc: &Document,
        index: &DocIndex,
        applied: &AppliedDelta,
    ) {
        index.debug_assert_current(doc);
        debug_assert_eq!(
            self.epoch + 1,
            doc.epoch(),
            "the incremental validator must see every delta exactly once",
        );
        let dirty = applied.dirty_node();
        let mut chain = vec![dirty];
        chain.extend(doc.ancestors(dirty));
        for k in 0..keys.len() {
            self.refresh_key(keys, k, doc, index, Some(&chain));
        }
        self.epoch = doc.epoch();
    }

    /// All current violations, in the exact order a from-scratch
    /// [`KeyIndex::violations`] pass over the mutated document produces
    /// (Σ order, contexts in document order).
    pub fn violations(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for state in &self.keys {
            for c in &state.contexts {
                if let Some(v) = state.violations.get(c) {
                    out.extend(v.iter().cloned());
                }
            }
        }
        out
    }

    /// The number of current violations, without materializing them.
    pub fn violation_count(&self) -> usize {
        self.keys
            .iter()
            .map(|s| s.violations.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// True if the document currently satisfies every key of Σ.
    pub fn satisfies(&self) -> bool {
        self.keys.iter().all(|s| s.violations.is_empty())
    }

    /// Re-evaluates the contexts of key `k` and recomputes the dirty ones.
    /// `chain = None` marks everything dirty (initial build); otherwise
    /// `chain` is the dirty ancestor chain of the edit, and a context or
    /// target outside it (with cached state) is reused untouched.
    fn refresh_key(
        &mut self,
        keys: &KeyIndex,
        k: usize,
        doc: &Document,
        index: &DocIndex,
        chain: Option<&[NodeId]>,
    ) {
        let key = &keys.keys()[k];
        let state = &mut self.keys[k];
        let scratch = &mut self.scratch;
        key.context().evaluate_positions(
            index,
            index.position(doc.root()),
            &mut scratch.eval,
            &mut scratch.cpos,
        );
        let new_contexts: Vec<NodeId> = scratch.cpos.iter().map(|&p| index.node_at(p)).collect();
        // When the context set is unchanged (the overwhelmingly common
        // case) membership checks and garbage collection are skipped.
        let same_contexts = state.contexts == new_contexts;
        for (i, &c) in new_contexts.iter().enumerate() {
            let dirty = match chain {
                None => true,
                Some(chain) => {
                    (!same_contexts && !state.targets.contains_key(&c)) || chain.contains(&c)
                }
            };
            if !dirty {
                continue;
            }
            key.target().evaluate_positions(
                index,
                scratch.cpos[i],
                &mut scratch.eval,
                &mut scratch.tpos,
            );
            let new_targets: Vec<NodeId> = scratch.tpos.iter().map(|&p| index.node_at(p)).collect();
            // Pull the context's old probes out for selective reuse; what
            // stays unclaimed (vanished targets) is dropped.
            let mut old_entries: HashMap<NodeId, TargetEntry> = HashMap::new();
            if let Some(old_targets) = state.targets.remove(&c) {
                for t in old_targets {
                    if let Some(e) = state.entries.remove(&(c, t)) {
                        old_entries.insert(t, e);
                    }
                }
            }
            scratch.seen.clear();
            let mut viol: Vec<Violation> = Vec::new();
            for (j, &t) in new_targets.iter().enumerate() {
                let target_pos = scratch.tpos[j];
                let reusable = matches!(chain, Some(chain) if !chain.contains(&t));
                let entry = match old_entries.remove(&t) {
                    Some(e) if reusable => e,
                    _ => probe_target(keys, k, index, c, target_pos),
                };
                viol.extend(entry.cond1.iter().cloned());
                if let Some(tuple) = &entry.tuple {
                    // Condition (2): no two distinct targets under this
                    // context agree on the whole key tuple.
                    match scratch.seen.get(tuple) {
                        Some(&first) => viol.push(Violation::DuplicateKeyValue {
                            context: c,
                            first,
                            second: t,
                            values: keys.tuple_strings_at(k, doc, index, target_pos),
                        }),
                        None => {
                            scratch.seen.insert(tuple.clone(), t);
                        }
                    }
                }
                state.entries.insert((c, t), entry);
            }
            if viol.is_empty() {
                state.violations.remove(&c);
            } else {
                state.violations.insert(c, viol);
            }
            state.targets.insert(c, new_targets);
        }
        if !same_contexts {
            // Garbage-collect contexts that vanished with the edit.
            let live: HashSet<NodeId> = new_contexts.iter().copied().collect();
            let stale: Vec<NodeId> = state
                .targets
                .keys()
                .copied()
                .filter(|c| !live.contains(c))
                .collect();
            for c in stale {
                if let Some(ts) = state.targets.remove(&c) {
                    for t in ts {
                        state.entries.remove(&(c, t));
                    }
                }
                state.violations.remove(&c);
            }
            state.contexts = new_contexts;
        }
    }
}

/// Probes one target of key `k` under `context`: counts the attribute
/// children behind each key attribute (condition (1) demands exactly one)
/// and assembles the interned-value tuple — the cached form of the inner
/// loop of [`KeyIndex::violations`].
fn probe_target(
    keys: &KeyIndex,
    k: usize,
    index: &DocIndex,
    context: NodeId,
    target_pos: u32,
) -> TargetEntry {
    let key = &keys.keys()[k];
    let mut cond1 = Vec::new();
    let mut tuple = Vec::with_capacity(key.val_attrs().len());
    let mut complete = true;
    for &attr in key.val_attrs() {
        let mut count = 0u32;
        let mut value = 0u32;
        for child in index.children_at(target_pos) {
            if index.label_at(child) == attr && index.kind_at(child).is_attribute() {
                count += 1;
                value = index.value_id_at(child).unwrap_or(0);
            }
        }
        match count {
            1 => tuple.push(value),
            0 => {
                complete = false;
                cond1.push(Violation::MissingAttribute {
                    context,
                    target: index.node_at(target_pos),
                    attribute: keys.universe().name(attr).to_string(),
                });
            }
            _ => {
                complete = false;
                cond1.push(Violation::DuplicateAttribute {
                    context,
                    target: index.node_at(target_pos),
                    attribute: keys.universe().name(attr).to_string(),
                });
            }
        }
    }
    TargetEntry {
        cond1,
        tuple: complete.then_some(tuple),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{example_2_1_keys, KeySet};
    use xmlprop_xmltree::{Delta, Fragment};

    /// Applies a script of deltas, asserting after each one that the
    /// incremental violations equal a from-scratch pass bit-for-bit.
    fn run_script(sigma: &KeySet, mut doc: Document, script: Vec<Delta>) {
        let mut keys = KeyIndex::new(sigma);
        let mut universe = keys.universe().clone();
        let mut index = DocIndex::build(&doc, &mut universe);
        let mut validator = IncrementalValidator::new(&keys, &doc, &index);
        assert_eq!(validator.violations(), keys.violations(&doc, &index));
        for delta in &script {
            let applied = doc.apply(delta).unwrap();
            index.apply_delta(&doc, &applied, &mut universe);
            validator.apply(&keys, &doc, &index, &applied);
            let scratch = keys.index_document(&doc);
            let expected = keys.violations(&doc, &scratch);
            assert_eq!(validator.violations(), expected, "after {delta:?}");
            assert_eq!(validator.violation_count(), expected.len());
            assert_eq!(validator.satisfies(), expected.is_empty());
        }
    }

    #[test]
    fn incremental_tracks_scratch_on_fig1_edits() {
        let doc = xmlprop_xmltree::sample::fig1();
        let books: Vec<NodeId> = doc
            .all_nodes()
            .into_iter()
            .filter(|&n| doc.label(n) == "book")
            .collect();
        let isbn0 = doc.attribute_node(books[0], "isbn").unwrap();
        let isbn1 = doc.attribute_node(books[1], "isbn").unwrap();
        let chapter = doc.children_labelled(books[0], "chapter").next().unwrap();
        let script = vec![
            // Collide the two isbn values: one DuplicateKeyValue appears.
            Delta::SetText {
                node: isbn1,
                text: "123".into(),
            },
            // Resolve it again.
            Delta::SetText {
                node: isbn1,
                text: "999".into(),
            },
            // A second isbn on book 0: DuplicateAttribute.
            Delta::InsertSubtree {
                parent: books[0],
                position: 0,
                fragment: Fragment::Attribute {
                    name: "isbn".into(),
                    value: "123".into(),
                },
            },
            // Remove the original: back to one isbn.
            Delta::RemoveSubtree { node: isbn0 },
            // A whole new book without isbn: MissingAttribute, plus new
            // chapter contexts.
            Delta::InsertSubtree {
                parent: doc.root(),
                position: 2,
                fragment: Fragment::Element(
                    Document::parse_str(
                        "<book><title>New</title><chapter number=\"1\"><name>A</name></chapter></book>",
                    )
                    .unwrap(),
                ),
            },
            // Remove a chapter subtree: contexts vanish.
            Delta::RemoveSubtree { node: chapter },
        ];
        run_script(&example_2_1_keys(), doc, script);
    }

    #[test]
    fn incremental_handles_duplicate_tuples_through_reuse() {
        // Three siblings with equal tuples; edits flip which ones collide.
        let doc = Document::parse_str(r#"<r><b isbn="1"/><b isbn="2"/><b isbn="1"/></r>"#).unwrap();
        let sigma = KeySet::from_keys(vec![crate::XmlKey::parse("(ε, (//b, {@isbn}))").unwrap()]);
        let bs: Vec<NodeId> = doc
            .all_nodes()
            .into_iter()
            .filter(|&n| doc.label(n) == "b")
            .collect();
        let a0 = doc.attribute_node(bs[0], "isbn").unwrap();
        let a1 = doc.attribute_node(bs[1], "isbn").unwrap();
        let script = vec![
            // 1,2,1 → 2,2,1: the colliding pair shifts.
            Delta::SetText {
                node: a0,
                text: "2".into(),
            },
            // 2,2,1 → 2,1,1.
            Delta::SetText {
                node: a1,
                text: "1".into(),
            },
            // Remove the first: 1,1 still collide.
            Delta::RemoveSubtree { node: bs[0] },
            // Remove another: no collision left.
            Delta::RemoveSubtree { node: bs[1] },
        ];
        run_script(&sigma, doc, script);
    }
}
