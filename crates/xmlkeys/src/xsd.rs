//! Importing XML Schema identity constraints as keys of class `K^A`.
//!
//! The paper's key notation is deliberately more concise than XML Schema's
//! (`xs:key` with `xs:selector`/`xs:field`), but Section 1 notes that the
//! class studied "is a subset of those in XML Schema".  Data providers in
//! practice publish XSD, so this module converts the convertible subset of
//! XML Schema identity constraints into [`crate::XmlKey`]s:
//!
//! * an `xs:key` (or `xs:unique`) element declared within the element
//!   declaration for some element type `E` becomes a key whose **context**
//!   is `//E` (or `ε` when declared on the schema's root declaration);
//! * the `xs:selector` XPath becomes the **target** path (only the
//!   child/descendant axes of the paper's path language are supported;
//!   predicates, unions, `..`, and attributes in the selector are rejected);
//! * each `xs:field` must be of the form `@name` (class `K^A` restricts key
//!   paths to attributes); `xs:unique` with *no* field or element fields is
//!   rejected as outside the class.
//!
//! `xs:keyref` (foreign keys) is recognised and reported as unsupported:
//! Theorem 3.2 of the paper shows that propagation with foreign keys is
//! undecidable, so refusing them is the faithful behaviour.

use crate::{KeySet, XmlKey};
use std::fmt;
use xmlprop_xmlpath::PathExpr;
use xmlprop_xmltree::{Document, NodeId};

/// Why an identity constraint could not be imported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XsdImportError {
    /// The schema document could not be parsed as XML.
    Xml(String),
    /// A keyref was encountered; foreign keys cannot be propagated
    /// (Theorem 3.2), so the import refuses rather than silently dropping it.
    ForeignKeyUnsupported {
        /// The `name` attribute of the keyref.
        name: String,
    },
    /// A selector or field XPath uses syntax outside the paper's fragment.
    UnsupportedPath {
        /// The constraint the path belongs to.
        constraint: String,
        /// The offending XPath text.
        xpath: String,
        /// What exactly is not supported.
        reason: String,
    },
    /// A field is not a simple attribute path (class `K^A` requirement).
    NonAttributeField {
        /// The constraint the field belongs to.
        constraint: String,
        /// The offending field XPath.
        xpath: String,
    },
    /// The constraint element is missing a required child or attribute.
    Malformed {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for XsdImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XsdImportError::Xml(e) => write!(f, "schema is not well-formed XML: {e}"),
            XsdImportError::ForeignKeyUnsupported { name } => write!(
                f,
                "keyref `{name}`: foreign keys cannot be propagated (Theorem 3.2) and are not imported"
            ),
            XsdImportError::UnsupportedPath { constraint, xpath, reason } => {
                write!(f, "constraint `{constraint}`: selector `{xpath}` is unsupported ({reason})")
            }
            XsdImportError::NonAttributeField { constraint, xpath } => write!(
                f,
                "constraint `{constraint}`: field `{xpath}` is not a simple attribute (class K^A only allows @attribute fields)"
            ),
            XsdImportError::Malformed { message } => write!(f, "malformed constraint: {message}"),
        }
    }
}

impl std::error::Error for XsdImportError {}

/// The outcome of importing a schema: the keys that could be converted plus
/// the constraints that were skipped (with the reason), so callers can warn
/// instead of failing outright.
#[derive(Debug, Clone, Default)]
pub struct XsdImport {
    /// Successfully converted keys.
    pub keys: KeySet,
    /// Constraints that could not be converted.
    pub skipped: Vec<XsdImportError>,
}

/// Imports the identity constraints of an XML Schema document (given as XSD
/// text).  Constraints that fall outside the paper's key class are collected
/// in [`XsdImport::skipped`] rather than aborting the import.
pub fn import_xsd_keys(xsd_text: &str) -> Result<XsdImport, XsdImportError> {
    let doc = Document::parse_str(xsd_text).map_err(|e| XsdImportError::Xml(e.to_string()))?;
    let mut out = XsdImport::default();
    collect(&doc, doc.root(), &mut out);
    Ok(out)
}

fn local_name(label: &str) -> &str {
    label.rsplit(':').next().unwrap_or(label)
}

fn collect(doc: &Document, node: NodeId, out: &mut XsdImport) {
    for child in doc.element_children(node) {
        match local_name(doc.label(child)) {
            "key" | "unique" => match convert_constraint(doc, child) {
                Ok(key) => out.keys.add(key),
                Err(e) => out.skipped.push(e),
            },
            "keyref" => out.skipped.push(XsdImportError::ForeignKeyUnsupported {
                name: doc
                    .attribute(child, "name")
                    .unwrap_or("<unnamed>")
                    .to_string(),
            }),
            _ => collect(doc, child, out),
        }
    }
}

/// Converts one `xs:key` / `xs:unique` element into an [`XmlKey`].
fn convert_constraint(doc: &Document, node: NodeId) -> Result<XmlKey, XsdImportError> {
    let name = doc
        .attribute(node, "name")
        .unwrap_or("<unnamed>")
        .to_string();

    // The context is the element declaration the constraint is attached to:
    // the nearest enclosing xs:element's name, reached from anywhere in the
    // document (hence `//element-name`), or ε when there is none (schema
    // scope).
    let mut context = PathExpr::epsilon();
    let mut anc = doc.parent(node);
    while let Some(a) = anc {
        if local_name(doc.label(a)) == "element" {
            if let Some(elem_name) = doc.attribute(a, "name") {
                context = PathExpr::epsilon().descendant(elem_name);
            }
            break;
        }
        anc = doc.parent(a);
    }

    // Selector.
    let selector = doc
        .element_children(node)
        .find(|&c| local_name(doc.label(c)) == "selector")
        .and_then(|s| doc.attribute(s, "xpath").map(str::to_string))
        .ok_or_else(|| XsdImportError::Malformed {
            message: format!("constraint `{name}` has no selector"),
        })?;
    let target = convert_selector_path(&name, &selector)?;

    // Fields.
    let mut attrs = Vec::new();
    for field in doc
        .element_children(node)
        .filter(|&c| local_name(doc.label(c)) == "field")
    {
        let xpath = doc
            .attribute(field, "xpath")
            .ok_or_else(|| XsdImportError::Malformed {
                message: format!("a field of constraint `{name}` has no xpath"),
            })?
            .trim()
            .to_string();
        match xpath.strip_prefix('@') {
            Some(attr) if !attr.is_empty() && !attr.contains('/') => attrs.push(format!("@{attr}")),
            _ => {
                return Err(XsdImportError::NonAttributeField {
                    constraint: name,
                    xpath,
                });
            }
        }
    }

    Ok(XmlKey::new(context, target, attrs).named(name))
}

/// Converts an `xs:selector` XPath into the paper's path language.
fn convert_selector_path(constraint: &str, xpath: &str) -> Result<PathExpr, XsdImportError> {
    let xpath = xpath.trim();
    let unsupported = |reason: &str| XsdImportError::UnsupportedPath {
        constraint: constraint.to_string(),
        xpath: xpath.to_string(),
        reason: reason.to_string(),
    };
    if xpath.is_empty() || xpath == "." {
        return Ok(PathExpr::epsilon());
    }
    if xpath.contains('|') {
        return Err(unsupported("union paths are not in the fragment"));
    }
    if xpath.contains('[') || xpath.contains(']') {
        return Err(unsupported("predicates are not in the fragment"));
    }
    if xpath.contains("..") {
        return Err(unsupported("the parent axis is not in the fragment"));
    }
    if xpath.contains('@') {
        return Err(unsupported("selectors must reach elements, not attributes"));
    }
    // XSD selectors commonly start with `.//`; normalize that to `//`, and a
    // plain `./` prefix to nothing.
    let normalized = if let Some(rest) = xpath.strip_prefix(".//") {
        format!("//{rest}")
    } else if let Some(rest) = xpath.strip_prefix("./") {
        rest.to_string()
    } else {
        xpath.to_string()
    };
    let normalized = normalized
        .replace("child::", "")
        .replace("descendant-or-self::node()/", "//");
    if normalized.contains("::") {
        return Err(unsupported(
            "only the child and // axes are in the fragment",
        ));
    }
    normalized
        .parse::<PathExpr>()
        .map_err(|e| unsupported(&format!("cannot parse as the paper's path language: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOOK_XSD: &str = r#"
      <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
        <xs:element name="r">
          <xs:key name="bookIsbn">
            <xs:selector xpath=".//book"/>
            <xs:field xpath="@isbn"/>
          </xs:key>
        </xs:element>
        <xs:element name="book">
          <xs:key name="chapterNumber">
            <xs:selector xpath="chapter"/>
            <xs:field xpath="@number"/>
          </xs:key>
        </xs:element>
      </xs:schema>"#;

    #[test]
    fn imports_key_constraints() {
        let import = import_xsd_keys(BOOK_XSD).unwrap();
        assert!(import.skipped.is_empty(), "{:?}", import.skipped);
        assert_eq!(import.keys.len(), 2);
        let k1 = import.keys.get("bookIsbn").unwrap();
        assert_eq!(k1.context().to_string(), "//r");
        assert_eq!(k1.target().to_string(), "//book");
        assert_eq!(k1.key_attrs(), ["@isbn"]);
        let k2 = import.keys.get("chapterNumber").unwrap();
        assert_eq!(k2.context().to_string(), "//book");
        assert_eq!(k2.target().to_string(), "chapter");
    }

    #[test]
    fn keyrefs_are_refused_with_a_reason() {
        let xsd = r#"
          <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
            <xs:element name="db">
              <xs:keyref name="chapterToBook" refer="bookIsbn">
                <xs:selector xpath="chapter"/>
                <xs:field xpath="@inBook"/>
              </xs:keyref>
            </xs:element>
          </xs:schema>"#;
        let import = import_xsd_keys(xsd).unwrap();
        assert!(import.keys.is_empty());
        assert_eq!(import.skipped.len(), 1);
        assert!(matches!(
            import.skipped[0],
            XsdImportError::ForeignKeyUnsupported { .. }
        ));
        assert!(import.skipped[0].to_string().contains("Theorem 3.2"));
    }

    #[test]
    fn non_attribute_fields_are_rejected() {
        let xsd = r#"
          <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
            <xs:element name="db">
              <xs:unique name="byTitle">
                <xs:selector xpath=".//book"/>
                <xs:field xpath="title"/>
              </xs:unique>
            </xs:element>
          </xs:schema>"#;
        let import = import_xsd_keys(xsd).unwrap();
        assert!(import.keys.is_empty());
        assert!(matches!(
            import.skipped[0],
            XsdImportError::NonAttributeField { .. }
        ));
    }

    #[test]
    fn unsupported_selector_syntax_is_reported() {
        for (xpath, fragment) in [
            ("book[1]", "predicates"),
            ("book|magazine", "union"),
            ("../book", "parent axis"),
            ("book/@isbn", "attributes"),
        ] {
            let xsd = format!(
                r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
                     <xs:element name="db">
                       <xs:key name="k"><xs:selector xpath="{xpath}"/><xs:field xpath="@id"/></xs:key>
                     </xs:element>
                   </xs:schema>"#
            );
            let import = import_xsd_keys(&xsd).unwrap();
            assert!(import.keys.is_empty(), "{xpath} should not import");
            let msg = import.skipped[0].to_string();
            assert!(
                msg.contains(fragment) || msg.contains("unsupported"),
                "{msg}"
            );
        }
    }

    #[test]
    fn empty_selector_means_the_declaring_element_itself() {
        let xsd = r#"
          <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
            <xs:element name="book">
              <xs:unique name="selfId">
                <xs:selector xpath="."/>
                <xs:field xpath="@isbn"/>
              </xs:unique>
            </xs:element>
          </xs:schema>"#;
        let import = import_xsd_keys(xsd).unwrap();
        let key = import.keys.get("selfId").unwrap();
        assert!(key.target().is_epsilon());
        assert_eq!(key.context().to_string(), "//book");
    }

    #[test]
    fn malformed_constraints_and_bad_xml() {
        assert!(import_xsd_keys("<not closed").is_err());
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
            <xs:element name="db"><xs:key name="nosel"><xs:field xpath="@a"/></xs:key></xs:element>
          </xs:schema>"#;
        let import = import_xsd_keys(xsd).unwrap();
        assert!(matches!(
            import.skipped[0],
            XsdImportError::Malformed { .. }
        ));
    }

    #[test]
    fn imported_keys_work_with_the_rest_of_the_stack() {
        // The imported keys hold on the Fig. 1 document (context //r matches
        // its root) and support the same propagation reasoning.
        let import = import_xsd_keys(BOOK_XSD).unwrap();
        let doc = xmlprop_xmltree::sample::fig1();
        assert!(crate::satisfies_all(&doc, &import.keys));
        assert!(crate::implies(
            &import.keys,
            &XmlKey::parse("(//r, (//book, {@isbn}))").unwrap()
        ));
    }
}
