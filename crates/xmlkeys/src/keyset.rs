//! Sets of XML keys and the transitive-set property.

use crate::XmlKey;
use std::fmt;

/// A set `Σ` of XML keys.
///
/// Order is preserved (it is convenient for display and deterministic
/// benchmarks) but has no semantic meaning.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KeySet {
    keys: Vec<XmlKey>,
}

impl KeySet {
    /// The empty key set.
    pub fn new() -> Self {
        KeySet::default()
    }

    /// Builds a set from a vector of keys, dropping exact duplicates.
    pub fn from_keys(keys: Vec<XmlKey>) -> Self {
        let mut out = KeySet::new();
        for k in keys {
            out.add(k);
        }
        out
    }

    /// Adds a key (ignored if an identical key is already present).
    pub fn add(&mut self, key: XmlKey) {
        if !self.keys.contains(&key) {
            self.keys.push(key);
        }
    }

    /// Iterates over the keys.
    pub fn iter(&self) -> impl Iterator<Item = &XmlKey> {
        self.keys.iter()
    }

    /// The keys as a slice.
    pub fn keys(&self) -> &[XmlKey] {
        &self.keys
    }

    /// The number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Looks a key up by name.
    pub fn get(&self, name: &str) -> Option<&XmlKey> {
        self.keys.iter().find(|k| k.name() == Some(name))
    }

    /// The prepared form of this key set: compiled paths, precomputed
    /// target splits and an assured-attribute index (see
    /// [`crate::KeyIndex`]).  Build it once when many implication or
    /// `exist()` questions will be asked against the same `Σ`.
    pub fn prepare(&self) -> crate::KeyIndex {
        crate::KeyIndex::new(self)
    }

    /// The total size `|Σ|` (sum of key sizes), the measure used in the
    /// paper's complexity statements.
    pub fn size(&self) -> usize {
        self.keys.iter().map(XmlKey::size).sum()
    }

    /// The *immediately precedes* relation of Section 4: key `a` immediately
    /// precedes key `b` when `b`'s context is (equivalent to) `a`'s context
    /// concatenated with `a`'s target, i.e. `Qb ≡ Qa/Qa'`.
    pub fn immediately_precedes(a: &XmlKey, b: &XmlKey) -> bool {
        a.absolute_target().equivalent(b.context())
    }

    /// True if `Σ` is a **transitive** set of keys: every relative key is
    /// preceded (transitively) by an absolute key of the set, so that any
    /// target node can be identified all the way up from the root
    /// (Section 4, Example 4.1).
    pub fn is_transitive(&self) -> bool {
        self.keys
            .iter()
            .all(|k| self.key_reachable_from_absolute(k))
    }

    /// True if this particular key is reachable (via the precedes relation)
    /// from some absolute key of the set — absolute keys are trivially
    /// reachable from themselves.
    pub fn key_reachable_from_absolute(&self, key: &XmlKey) -> bool {
        if key.is_absolute() {
            return true;
        }
        // Breadth-first search backwards over the "immediately precedes"
        // relation: find a predecessor chain ending in an absolute key.
        let mut frontier: Vec<&XmlKey> = vec![key];
        let mut visited: Vec<&XmlKey> = vec![key];
        while let Some(current) = frontier.pop() {
            for candidate in &self.keys {
                if KeySet::immediately_precedes(candidate, current) {
                    if candidate.is_absolute() {
                        return true;
                    }
                    if !visited.contains(&candidate) {
                        visited.push(candidate);
                        frontier.push(candidate);
                    }
                }
            }
        }
        false
    }
}

impl fmt::Display for KeySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for key in &self.keys {
            writeln!(f, "{key}")?;
        }
        Ok(())
    }
}

impl IntoIterator for KeySet {
    type Item = XmlKey;
    type IntoIter = std::vec::IntoIter<XmlKey>;

    fn into_iter(self) -> Self::IntoIter {
        self.keys.into_iter()
    }
}

impl<'a> IntoIterator for &'a KeySet {
    type Item = &'a XmlKey;
    type IntoIter = std::slice::Iter<'a, XmlKey>;

    fn into_iter(self) -> Self::IntoIter {
        self.keys.iter()
    }
}

impl FromIterator<XmlKey> for KeySet {
    fn from_iter<T: IntoIterator<Item = XmlKey>>(iter: T) -> Self {
        KeySet::from_keys(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example_2_1_keys;

    #[test]
    fn construction_and_lookup() {
        let keys = example_2_1_keys();
        assert_eq!(keys.len(), 7);
        assert!(keys.get("K2").is_some());
        assert!(keys.get("K9").is_none());
        assert!(keys.size() > 0);
        assert!(!keys.is_empty());
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut keys = KeySet::new();
        let k = XmlKey::parse("(ε, (//book, {@isbn}))").unwrap();
        keys.add(k.clone());
        keys.add(k);
        assert_eq!(keys.len(), 1);
    }

    #[test]
    fn example_4_1_transitivity() {
        // {K1, K2} is transitive; {K2} alone is not.
        let all = example_2_1_keys();
        let k1 = all.get("K1").unwrap().clone();
        let k2 = all.get("K2").unwrap().clone();
        let both = KeySet::from_keys(vec![k1.clone(), k2.clone()]);
        assert!(both.is_transitive());
        assert!(KeySet::immediately_precedes(&k1, &k2));
        let only_k2 = KeySet::from_keys(vec![k2]);
        assert!(!only_k2.is_transitive());
    }

    #[test]
    fn full_example_set_is_transitive() {
        // K6 needs K2 which needs K1; K4/K5/K7/K3 similarly chain upward.
        let keys = example_2_1_keys();
        assert!(keys.is_transitive());
        // Dropping K1 breaks the chains for every relative key.
        let without_k1: KeySet = keys
            .iter()
            .filter(|k| k.name() != Some("K1"))
            .cloned()
            .collect();
        assert!(!without_k1.is_transitive());
    }

    #[test]
    fn chains_of_length_two() {
        // K6 = (//book/chapter, (section, {@number})) is preceded by K2,
        // which is preceded by K1 — reachability must follow the chain.
        let keys = example_2_1_keys();
        let k1 = keys.get("K1").unwrap();
        let k2 = keys.get("K2").unwrap();
        let k6 = keys.get("K6").unwrap();
        assert!(KeySet::immediately_precedes(k2, k6));
        assert!(!KeySet::immediately_precedes(k1, k6));
        assert!(keys.key_reachable_from_absolute(k6));
    }

    #[test]
    fn display_lists_all_keys() {
        let keys = example_2_1_keys();
        let text = keys.to_string();
        assert_eq!(text.lines().count(), 7);
        assert!(text.contains("K5"));
    }
}
