//! The XML key type.

use std::fmt;
use std::str::FromStr;
use xmlprop_xmlpath::PathExpr;

/// An XML key `(Q, (Q', {@a1, …, @ak}))` of class `K^A` (attribute key
/// paths), optionally carrying a name such as `K1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct XmlKey {
    name: Option<String>,
    context: PathExpr,
    target: PathExpr,
    key_attrs: Vec<String>,
}

impl XmlKey {
    /// Creates a key from its three components.  Attribute names may be given
    /// with or without the leading `@`; they are normalized to carry it.
    pub fn new<I, S>(context: PathExpr, target: PathExpr, key_attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut attrs: Vec<String> = key_attrs
            .into_iter()
            .map(|a| {
                let a = a.into();
                if a.starts_with('@') {
                    a
                } else {
                    format!("@{a}")
                }
            })
            .collect();
        attrs.sort();
        attrs.dedup();
        XmlKey {
            name: None,
            context,
            target,
            key_attrs: attrs,
        }
    }

    /// Attaches a name (e.g. `"K2"`) to the key.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Parses the paper's syntax, e.g.
    /// `"K2: (//book, (chapter, {@number}))"` — the `K2:` prefix and the
    /// `@` on attribute names are optional, `{}` denotes an empty key-path
    /// set.
    pub fn parse(s: &str) -> Result<Self, ParseKeyError> {
        s.parse()
    }

    /// The key's name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The context path `Q`.
    pub fn context(&self) -> &PathExpr {
        &self.context
    }

    /// The target path `Q'`.
    pub fn target(&self) -> &PathExpr {
        &self.target
    }

    /// The attribute key paths `{@a1, …, @ak}`.
    ///
    /// **Invariant:** every entry carries the leading `@`, and the slice is
    /// sorted and duplicate-free.  [`XmlKey::new`] and the parser normalize
    /// once at construction time, so consumers (the implication index, the
    /// `exist()` analysis) compare attribute names directly instead of
    /// re-prefixing per probe.
    pub fn key_attrs(&self) -> &[String] {
        &self.key_attrs
    }

    /// True if the key is absolute (`Q = ε`).
    pub fn is_absolute(&self) -> bool {
        self.context.is_epsilon()
    }

    /// True if the key is relative (its context is not the root).
    pub fn is_relative(&self) -> bool {
        !self.is_absolute()
    }

    /// The concatenation `Q/Q'` — the position of the key's target nodes
    /// relative to the document root.
    pub fn absolute_target(&self) -> PathExpr {
        self.context.concat(&self.target)
    }

    /// The size `|φ|` of the key: number of path atoms plus key attributes
    /// (the measure used in the paper's complexity statements).
    pub fn size(&self) -> usize {
        self.context.len() + self.target.len() + self.key_attrs.len()
    }
}

impl fmt::Display for XmlKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(name) = &self.name {
            write!(f, "{name}: ")?;
        }
        write!(
            f,
            "({}, ({}, {{{}}}))",
            self.context,
            self.target,
            self.key_attrs.join(", ")
        )
    }
}

/// Error from parsing an [`XmlKey`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKeyError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseKeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid XML key: {}", self.message)
    }
}

impl std::error::Error for ParseKeyError {}

impl FromStr for XmlKey {
    type Err = ParseKeyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |m: &str| ParseKeyError {
            message: m.to_string(),
        };
        let s = s.trim();
        // Optional "NAME:" prefix (only if the colon comes before the first
        // parenthesis).
        let (name, rest) = match (s.find(':'), s.find('(')) {
            (Some(c), Some(p)) if c < p => (Some(s[..c].trim().to_string()), s[c + 1..].trim()),
            _ => (None, s),
        };
        let rest = rest.strip_prefix('(').ok_or_else(|| err("expected `(`"))?;
        let rest = rest
            .strip_suffix(')')
            .ok_or_else(|| err("expected trailing `)`"))?;
        // rest = "Q, (Q', {attrs})"
        let inner_open = rest
            .find('(')
            .ok_or_else(|| err("expected `(Q', {...})`"))?;
        let context_part = rest[..inner_open].trim().trim_end_matches(',').trim();
        let inner = rest[inner_open..].trim();
        let inner = inner
            .strip_prefix('(')
            .and_then(|t| t.strip_suffix(')'))
            .ok_or_else(|| err("expected `(Q', {...})`"))?;
        let brace_open = inner
            .find('{')
            .ok_or_else(|| err("expected `{...}` key paths"))?;
        let brace_close = inner
            .rfind('}')
            .ok_or_else(|| err("expected closing `}`"))?;
        if brace_close < brace_open {
            return Err(err("mismatched braces"));
        }
        let target_part = inner[..brace_open].trim().trim_end_matches(',').trim();
        let attrs_part = inner[brace_open + 1..brace_close].trim();

        let context: PathExpr = context_part
            .parse()
            .map_err(|e| err(&format!("context path: {e}")))?;
        let target: PathExpr = target_part
            .parse()
            .map_err(|e| err(&format!("target path: {e}")))?;
        let attrs: Vec<String> = attrs_part
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .map(str::to_string)
            .collect();
        for a in &attrs {
            if a.contains('/') || a.contains(' ') {
                return Err(err(&format!(
                    "key path `{a}` is not a simple attribute; class K^A only allows @attributes"
                )));
            }
        }
        let mut key = XmlKey::new(context, target, attrs);
        if let Some(name) = name {
            key = key.named(name);
        }
        Ok(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_the_paper_examples() {
        let k1 = XmlKey::parse("K1: (ε, (//book, {@isbn}))").unwrap();
        assert_eq!(k1.name(), Some("K1"));
        assert!(k1.is_absolute());
        assert_eq!(k1.target().to_string(), "//book");
        assert_eq!(k1.key_attrs(), ["@isbn"]);

        let k2 = XmlKey::parse("(//book, (chapter, {@number}))").unwrap();
        assert!(k2.is_relative());
        assert_eq!(k2.context().to_string(), "//book");
        assert_eq!(k2.absolute_target().to_string(), "//book/chapter");

        let k3 = XmlKey::parse("K3: (//book, (title, {}))").unwrap();
        assert!(k3.key_attrs().is_empty());

        let k7 = XmlKey::parse("K7: (//book, (author/contact, {}))").unwrap();
        assert_eq!(k7.target().to_string(), "author/contact");
    }

    #[test]
    fn attribute_names_are_normalized() {
        let a = XmlKey::new(
            "//book".parse().unwrap(),
            "chapter".parse().unwrap(),
            ["number"],
        );
        let b = XmlKey::new(
            "//book".parse().unwrap(),
            "chapter".parse().unwrap(),
            ["@number"],
        );
        assert_eq!(a, b);
        assert_eq!(a.key_attrs(), ["@number"]);
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for s in [
            "K1: (ε, (//book, {@isbn}))",
            "(//book, (chapter, {@number}))",
            "(//book/chapter, (section, {@number, @part}))",
            "(ε, (//order//item, {}))",
        ] {
            let key = XmlKey::parse(s).unwrap();
            let reparsed = XmlKey::parse(&key.to_string()).unwrap();
            assert_eq!(key, reparsed, "roundtrip of {s}");
        }
    }

    #[test]
    fn size_counts_atoms_and_attrs() {
        let k = XmlKey::parse("(//book/chapter, (section, {@number}))").unwrap();
        // context: //, book, chapter (3 atoms); target: section (1); attrs: 1.
        assert_eq!(k.size(), 5);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(XmlKey::parse("no parens").is_err());
        assert!(XmlKey::parse("(a, b)").is_err());
        assert!(XmlKey::parse("(a, (b, {c/d}))").is_err()); // non-attribute key path
        assert!(XmlKey::parse("(a, (b, {x y}))").is_err());
    }

    #[test]
    fn parse_errors_cover_every_structural_failure() {
        for (input, fragment) in [
            ("a, (b, {x}))", "expected `(`"),
            ("(a, (b, {x})) extra", "expected trailing `)`"),
            ("(a, b, {x})", "expected `(Q', {...})`"),
            ("(a, (b, x))", "expected `{...}` key paths"),
            ("(a, (b, {x))", "expected closing `}`"),
            ("(a b, (c, {x}))", "context path"),
            ("(a, (b c, {x}))", "target path"),
            ("(a, (b, {x/y}))", "not a simple attribute"),
        ] {
            let err = XmlKey::parse(input).unwrap_err();
            assert!(
                err.message.contains(fragment),
                "parsing `{input}` should mention `{fragment}`, got: {err}"
            );
            assert!(err.to_string().starts_with("invalid XML key"));
        }
    }

    #[test]
    fn parse_tolerates_whitespace_and_optional_pieces() {
        // Name prefix only counts when the colon precedes the first paren.
        let k = XmlKey::parse("  K9 :  ( //a , ( b , { @x , y } ) )  ").unwrap();
        assert_eq!(k.name(), Some("K9"));
        assert_eq!(k.key_attrs(), ["@x", "@y"]);
        // A colon after the first paren is part of a label, not a name.
        let colon = XmlKey::parse("(a:b, (c, {x}))").unwrap();
        assert_eq!(colon.name(), None);
        assert_eq!(colon.context().to_string(), "a:b");
        let unnamed = XmlKey::parse("(a, (b, {}))").unwrap();
        assert_eq!(unnamed.name(), None);
        assert!(unnamed.key_attrs().is_empty());
    }

    #[test]
    fn duplicate_attrs_are_deduplicated() {
        let k = XmlKey::parse("(a, (b, {@x, @x, x}))").unwrap();
        assert_eq!(k.key_attrs(), ["@x"]);
    }
}
