//! Event-driven shredding: a [`ShredPlan`] executed over a stream of parse
//! events without ever materialising a `Document` or `DocIndex`.
//!
//! [`StreamShredder`] keeps an **open-binding frontier**: one *instance* per
//! variable binding whose subtree is still open.  Element enter events step a
//! per-child-variable [`StreamMatcher`] state stack; an accepting state opens
//! a new instance, and when an instance's node closes its rows (the Cartesian
//! product of its own binding with its children's row sets, `null`-padded for
//! unbound branches) are folded into its parent.  Attribute and text events
//! open and close leaf instances in place.  Peak retained state is therefore
//! bounded by the document depth plus the open bindings and their pending
//! rows — independent of total document size.
//!
//! The hot path is allocation-free in the steady state: instance shells are
//! pooled per variable, row buffers are recycled, serialised `value()`
//! strings live once in an arena with rows carrying `u32` arena refs (so
//! folding a subtree into its parent is a plain integer memcpy — the cost
//! profile of the DOM path's binding table), and attribute/text events only
//! step the child variables whose path can consume the event's label at all.
//!
//! Row **order** matches [`ShredPlan::shred_with`] bit for bit: when the
//! plan's variable ids are already a pre-order of the table tree (they are
//! for every parsed transformation) the nested-product assembly produces the
//! DOM order directly; otherwise the finished rows are sorted by their
//! binding positions in variable-id order, which is exactly the DOM's
//! lexicographic enumeration.

use crate::plan::ShredPlan;
use xmlprop_reldb::{Relation, Tuple, Value};
use xmlprop_xmlpath::{LabelId, LabelUniverse, MatchState, StreamMatcher};

/// The "no binding" marker in key columns and the "no value" marker in
/// value-ref columns (same sentinel as the DOM path's binding table).
const NULL: u32 = u32::MAX;

/// Incremental `value()` serialisation of an element whose subtree is being
/// streamed.  Mirrors `field_value`: if every child of the node is a text
/// node the value is their concatenation, otherwise the parenthesised
/// structural form built from `@attr:v`, `S:text` and `label:(…)` parts.
#[derive(Debug)]
struct ValueBuilder {
    /// All children seen so far are text nodes.
    only_text: bool,
    /// Concatenated direct text children (the `only_text` serialisation).
    texts: String,
    /// The structural serialisation, built incrementally.
    structured: String,
    /// "No part emitted yet" flag per open nesting level.
    first: Vec<bool>,
    /// Open descendant elements (0 = events attach to the instance node).
    depth: usize,
}

impl ValueBuilder {
    fn new() -> Self {
        ValueBuilder {
            only_text: true,
            texts: String::new(),
            structured: String::from("("),
            first: vec![true],
            depth: 0,
        }
    }

    /// Emits the `", "` separator unless this is the level's first part.
    fn sep(&mut self) {
        let first = self.first.last_mut().expect("open level");
        if *first {
            *first = false;
        } else {
            self.structured.push_str(", ");
        }
    }

    fn start_element(&mut self, name: &str) {
        if self.depth == 0 {
            self.only_text = false;
        }
        self.sep();
        self.structured.push_str(name);
        self.structured.push_str(":(");
        self.first.push(true);
        self.depth += 1;
    }

    fn end_element(&mut self) {
        self.structured.push(')');
        self.first.pop();
        self.depth -= 1;
    }

    fn attribute(&mut self, name: &str, value: &str) {
        if self.depth == 0 {
            self.only_text = false;
        }
        self.sep();
        self.structured.push('@');
        self.structured.push_str(name);
        self.structured.push(':');
        self.structured.push_str(value);
    }

    fn text(&mut self, value: &str) {
        if self.depth == 0 {
            self.texts.push_str(value);
        }
        self.sep();
        self.structured.push_str("S:");
        self.structured.push_str(value);
    }

    fn finish(mut self) -> String {
        if self.only_text {
            self.texts
        } else {
            self.structured.push(')');
            self.structured
        }
    }
}

/// The rows produced by one closed variable subtree, stored flat.
///
/// Each row has `key_width[var]` binding positions (pre-order node numbers,
/// [`NULL`] for unbound) and `val_width[var]` value-arena refs ([`NULL`] for
/// unbound), laid out in the subtree's variable pre-order.
#[derive(Debug)]
struct RowSet {
    keys: Vec<u32>,
    vals: Vec<u32>,
    rows: usize,
}

/// One open binding: variable `var` bound to the node `node_pos`, with the
/// matcher frontier and accumulated child rows for its subtree.
#[derive(Debug)]
struct Instance {
    var: u32,
    node_pos: u32,
    /// `(open-stack index of parent instance, child slot, binding ordinal)`;
    /// `None` for the root variable's instance.
    parent: Option<(usize, usize, u32)>,
    /// Per child variable: one matcher state per element depth below the
    /// instance node (bottom = the state at the node itself).  Dead
    /// suffixes are elided: once a step dies, deeper elements bump
    /// `dead_runs` instead of pushing (dead states stay dead, so the
    /// omitted entries are all equal and never accepting).
    states: Vec<Vec<MatchState>>,
    /// Per child variable: number of elided dead states above the stack.
    dead_runs: Vec<u32>,
    /// Children whose frontier is still live (`dead_runs == 0`).
    live: u32,
    /// Element levels descended since `live` hit zero: with every child
    /// dead the whole per-child walk collapses to this one counter.
    frozen: u32,
    /// Per child variable: binding ordinals issued so far (creation order is
    /// document pre-order, which close order need not preserve).
    bind_counts: Vec<u32>,
    /// Per child variable: `(ordinal, rows)` of each closed binding.
    child_rows: Vec<Vec<(u32, RowSet)>>,
    /// Incremental `value()` for element-bound field variables.
    builder: Option<ValueBuilder>,
    /// Value-arena ref of the ready-made `value()` for attribute/text-bound
    /// field variables ([`NULL`] when the variable needs no value).
    own_ref: u32,
}

/// Executes one [`ShredPlan`] over a stream of parse events.
///
/// Feed the document through [`start_element`](Self::start_element) /
/// [`attribute`](Self::attribute) / [`text`](Self::text) /
/// [`end_element`](Self::end_element) (the shape emitted by
/// `xmlprop_xmltree::StreamParser`), then call [`finish`](Self::finish).
/// The resulting [`Relation`] is bit-for-bit what
/// [`ShredPlan::shred_with`] produces from the parsed document.
#[derive(Debug)]
pub struct StreamShredder<'a> {
    plan: &'a ShredPlan,
    /// One matcher per variable (index 0 is present but never stepped).
    matchers: Vec<StreamMatcher>,
    /// Child variable ids per variable, ascending.
    children: Vec<Vec<u32>>,
    /// Per variable: `(child slot, child var)` pairs whose path accepts the
    /// empty word (`//`, `ε`) — a fresh instance immediately binds them.
    empty_accepting: Vec<Vec<(u32, u32)>>,
    /// Per variable: a leaf (attribute/text) binding can be emitted as one
    /// padded row without opening an instance.  True unless some child path
    /// accepts ε (nothing else can bind below a leaf node).
    leaf_direct: Vec<bool>,
    /// Leaf dispatch, rebuilt lazily per element (matcher states only move
    /// at element boundaries): `(label id, child var, instance, child
    /// slot)` for every open pair whose next consumed label would accept.
    /// Attribute/text events scan this compact list instead of the open
    /// frontier.
    leaf_dispatch: Vec<(u32, u32, u32, u32)>,
    /// Open pairs that accept after consuming *any* label (`//` tails),
    /// as `(child var, instance, child slot)` — they bind on every leaf.
    leaf_dispatch_any: Vec<(u32, u32, u32)>,
    /// False whenever the frontier or its states changed since the
    /// dispatch lists were built.
    dispatch_valid: bool,
    /// `true` when variable ids are already a pre-order of the table tree,
    /// in which case nested-product assembly yields DOM row order directly.
    contiguous: bool,
    /// Variables whose `value()` must be materialised (field variables).
    value_needed: Vec<bool>,
    /// Flat row widths of each variable's subtree.
    key_width: Vec<usize>,
    val_width: Vec<usize>,
    /// Column of each variable in the root layout (key / value columns).
    key_col: Vec<usize>,
    val_col: Vec<usize>,
    /// The interned `"S"` label (text nodes), if the universe knows it.
    text_label: Option<LabelId>,
    /// The open-binding frontier, outermost first.
    open: Vec<Instance>,
    /// `open.len()` snapshot at each open element.
    frames: Vec<usize>,
    /// Open instances currently carrying a [`ValueBuilder`]; the per-event
    /// builder scans are skipped entirely while this is zero.
    builders_open: usize,
    /// Every materialised `value()` string, once; rows refer by index.
    values: Vec<Value>,
    /// Recycled instance shells, per variable (shapes match exactly).
    free: Vec<Vec<Instance>>,
    /// Recycled row buffers (key and value-ref vectors alike).
    u32_pool: Vec<Vec<u32>>,
    /// Scratch: `(child var, instance, child slot, ordinal)` bindings
    /// accepted during an event's scan, created after the scan ends.
    scratch_created: Vec<(u32, usize, usize, u32)>,
    /// Scratch: per-child flattened row blocks during assembly.
    scratch_blocks: Vec<(Vec<u32>, Vec<u32>, usize)>,
    /// Scratch: per-child carry-odometer counters during assembly.
    scratch_strides: Vec<usize>,
    /// Pre-order node counter (equals the DOM arena order for parsed docs).
    next_node: u32,
    peak_open: usize,
    /// The root instance's rows, set at the final `end_element`.
    result: Option<RowSet>,
}

impl<'a> StreamShredder<'a> {
    /// Prepares a streaming executor for `plan`.  `universe` must be the
    /// universe the plan was compiled against (it is consulted for the
    /// text-node label and for sizing the per-label candidate tables).
    pub fn new(plan: &'a ShredPlan, universe: &LabelUniverse) -> Self {
        let n = plan.var_count();
        let parents = plan.parents();
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, &p) in parents.iter().enumerate().skip(1) {
            children[p as usize].push(v as u32);
        }
        let matchers: Vec<StreamMatcher> = plan.paths().iter().map(StreamMatcher::new).collect();
        let empty_accepting: Vec<Vec<(u32, u32)>> = (0..n)
            .map(|v| {
                children[v]
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| {
                        let m = &matchers[c as usize];
                        m.accepts(m.start())
                    })
                    .map(|(ci, &c)| (ci as u32, c))
                    .collect()
            })
            .collect();
        let leaf_direct: Vec<bool> = empty_accepting.iter().map(Vec::is_empty).collect();
        let mut value_needed = vec![false; n];
        for &fv in plan.field_var_ids() {
            value_needed[fv as usize] = true;
        }
        // Variable pre-order of the table tree, children ascending.
        let mut layout = Vec::with_capacity(n);
        let mut stack = vec![0u32];
        while let Some(v) = stack.pop() {
            layout.push(v);
            for &c in children[v as usize].iter().rev() {
                stack.push(c);
            }
        }
        let contiguous = layout.iter().enumerate().all(|(i, &v)| i == v as usize);
        let mut key_width = vec![0usize; n];
        let mut val_width = vec![0usize; n];
        for &v in layout.iter().rev() {
            let v = v as usize;
            key_width[v] = 1 + children[v]
                .iter()
                .map(|&c| key_width[c as usize])
                .sum::<usize>();
            val_width[v] = usize::from(value_needed[v])
                + children[v]
                    .iter()
                    .map(|&c| val_width[c as usize])
                    .sum::<usize>();
        }
        let mut key_col = vec![0usize; n];
        let mut val_col = vec![0usize; n];
        let mut next_val_col = 0usize;
        for (pos, &v) in layout.iter().enumerate() {
            key_col[v as usize] = pos;
            if value_needed[v as usize] {
                val_col[v as usize] = next_val_col;
                next_val_col += 1;
            }
        }
        StreamShredder {
            plan,
            matchers,
            children,
            empty_accepting,
            leaf_direct,
            leaf_dispatch: Vec::new(),
            leaf_dispatch_any: Vec::new(),
            dispatch_valid: false,
            contiguous,
            value_needed,
            key_width,
            val_width,
            key_col,
            val_col,
            text_label: universe.lookup("S"),
            open: Vec::new(),
            frames: Vec::new(),
            builders_open: 0,
            values: Vec::new(),
            free: (0..n).map(|_| Vec::new()).collect(),
            u32_pool: Vec::new(),
            scratch_created: Vec::new(),
            scratch_blocks: Vec::new(),
            scratch_strides: Vec::new(),
            next_node: 0,
            peak_open: 0,
            result: None,
        }
    }

    /// The high-water mark of simultaneously open bindings.
    pub fn peak_open_bindings(&self) -> usize {
        self.peak_open
    }

    /// An element opened.  `label` is its interned label (or `None` when the
    /// plan's universe does not know the name); `name` is the tag as written.
    pub fn start_element(&mut self, label: Option<LabelId>, name: &str) {
        let node = self.next_node;
        self.next_node += 1;
        self.dispatch_valid = false;
        if self.builders_open > 0 {
            for inst in &mut self.open {
                if let Some(b) = inst.builder.as_mut() {
                    b.start_element(name);
                }
            }
        }
        self.frames.push(self.open.len());
        if node == 0 {
            // The document root always binds the root variable.
            self.create_element_instance(0, node, None);
        } else {
            let mut created = std::mem::take(&mut self.scratch_created);
            for (i, inst) in self.open.iter_mut().enumerate() {
                if inst.live == 0 {
                    inst.frozen += 1;
                    continue;
                }
                let var = inst.var as usize;
                for (ci, &c) in self.children[var].iter().enumerate() {
                    if inst.dead_runs[ci] > 0 {
                        inst.dead_runs[ci] += 1;
                        continue;
                    }
                    let matcher = &self.matchers[c as usize];
                    let stack = &mut inst.states[ci];
                    let top = *stack.last().expect("state stack");
                    let stepped = matcher.step(top, label);
                    if stepped.is_dead() {
                        inst.dead_runs[ci] = 1;
                        inst.live -= 1;
                        continue;
                    }
                    stack.push(stepped);
                    if matcher.accepts(stepped) {
                        let ord = inst.bind_counts[ci];
                        inst.bind_counts[ci] += 1;
                        created.push((c, i, ci, ord));
                    }
                }
            }
            for (c, i, ci, ord) in created.drain(..) {
                self.create_element_instance(c, node, Some((i, ci, ord)));
            }
            self.scratch_created = created;
        }
        // Cascade: a freshly opened instance's child paths may accept the
        // empty word (`//`, `ε`), binding the child at the same node.
        let frame_start = *self.frames.last().expect("frame");
        let mut j = frame_start;
        while j < self.open.len() {
            let var = self.open[j].var as usize;
            for k in 0..self.empty_accepting[var].len() {
                let (ci, c) = self.empty_accepting[var][k];
                let ci = ci as usize;
                let ord = self.open[j].bind_counts[ci];
                self.open[j].bind_counts[ci] += 1;
                self.create_element_instance(c, node, Some((j, ci, ord)));
            }
            j += 1;
        }
        self.peak_open = self.peak_open.max(self.open.len());
    }

    /// An attribute of the most recently opened element.
    pub fn attribute(&mut self, label: Option<LabelId>, name: &str, value: &str) {
        let node = self.next_node;
        self.next_node += 1;
        if self.builders_open > 0 {
            for inst in &mut self.open {
                if let Some(b) = inst.builder.as_mut() {
                    b.attribute(name, value);
                }
            }
        }
        self.leaf_bindings(label, node, value);
    }

    /// Character data inside the innermost open element.
    pub fn text(&mut self, value: &str) {
        let node = self.next_node;
        self.next_node += 1;
        if self.builders_open > 0 {
            for inst in &mut self.open {
                if let Some(b) = inst.builder.as_mut() {
                    b.text(value);
                }
            }
        }
        let label = self.text_label;
        self.leaf_bindings(label, node, value);
    }

    /// The innermost open element closed: fold every instance bound at it
    /// into its parent.
    pub fn end_element(&mut self) {
        let frame_start = self.frames.pop().expect("balanced events");
        self.dispatch_valid = false;
        if self.builders_open > 0 {
            for inst in &mut self.open[..frame_start] {
                if let Some(b) = inst.builder.as_mut() {
                    b.end_element();
                }
            }
        }
        while self.open.len() > frame_start {
            let mut inst = self.open.pop().expect("non-empty frontier");
            let parent = inst.parent;
            let rows = self.assemble(&mut inst);
            self.free[inst.var as usize].push(inst);
            match parent {
                Some((pi, ci, ord)) => self.open[pi].child_rows[ci].push((ord, rows)),
                None => self.result = Some(rows),
            }
        }
        for inst in &mut self.open[..frame_start] {
            if inst.frozen > 0 {
                inst.frozen -= 1;
                continue;
            }
            for (ci, stack) in inst.states.iter_mut().enumerate() {
                if inst.dead_runs[ci] > 0 {
                    inst.dead_runs[ci] -= 1;
                    if inst.dead_runs[ci] == 0 {
                        inst.live += 1;
                    }
                } else {
                    stack.pop();
                }
            }
        }
    }

    /// Builds the relation.  Must be called after the document's last
    /// `end_element`.
    pub fn finish(self) -> Relation {
        let rows = self.result.expect("a complete document was streamed");
        let n = self.plan.var_count();
        let kw = self.key_width[0];
        let vw = self.val_width[0];
        let mut order: Vec<usize> = (0..rows.rows).collect();
        if !self.contiguous {
            // Restore the DOM's lexicographic-by-variable-id enumeration.
            // Rows differing first at variable `v` share `v`'s parent
            // binding, so comparing pre-order node positions is exactly the
            // DOM's binding-list order (NULL never meets a real binding at
            // the first difference).
            order.sort_unstable_by(|&a, &b| {
                for v in 1..n {
                    let col = self.key_col[v];
                    match rows.keys[a * kw + col].cmp(&rows.keys[b * kw + col]) {
                        std::cmp::Ordering::Equal => continue,
                        other => return other,
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        let mut relation = Relation::new(self.plan.schema().clone());
        for &r in &order {
            let values: Vec<Value> = self
                .plan
                .field_var_ids()
                .iter()
                .map(|&fv| match rows.vals[r * vw + self.val_col[fv as usize]] {
                    NULL => Value::Null,
                    idx => self.values[idx as usize].clone(),
                })
                .collect();
            relation.insert(Tuple::new(values));
        }
        relation
    }

    /// Opens an instance for an element binding of `var` at `node`.
    fn create_element_instance(
        &mut self,
        var: u32,
        node: u32,
        parent: Option<(usize, usize, u32)>,
    ) {
        let builder = self.value_needed[var as usize].then(ValueBuilder::new);
        self.push_instance(var, node, parent, builder, NULL);
    }

    /// Rebuilds the leaf dispatch lists from the open frontier.  For each
    /// live `(instance, child)` pair the matcher reports, without stepping,
    /// which consumed labels would accept from the current state — at most
    /// one specific label (paths are single atom chains), or *all* labels
    /// when a `//` tail reaches the accept closure.
    fn build_leaf_dispatch(&mut self) {
        let mut dispatch = std::mem::take(&mut self.leaf_dispatch);
        let mut dispatch_any = std::mem::take(&mut self.leaf_dispatch_any);
        dispatch.clear();
        dispatch_any.clear();
        for (i, inst) in self.open.iter().enumerate() {
            if inst.live == 0 {
                continue;
            }
            let var = inst.var as usize;
            for (ci, &c) in self.children[var].iter().enumerate() {
                if inst.dead_runs[ci] > 0 {
                    continue;
                }
                let matcher = &self.matchers[c as usize];
                let top = *inst.states[ci].last().expect("state stack");
                if matcher.accepts_any_label(top) {
                    dispatch_any.push((c, i as u32, ci as u32));
                } else {
                    matcher.for_each_accepting_label(top, |l| {
                        dispatch.push((l.index() as u32, c, i as u32, ci as u32));
                    });
                }
            }
        }
        self.leaf_dispatch = dispatch;
        self.leaf_dispatch_any = dispatch_any;
        self.dispatch_valid = true;
    }

    /// Binds leaf (attribute/text) nodes: no states persist, instances open
    /// and close within the event.
    fn leaf_bindings(&mut self, label: Option<LabelId>, node: u32, text: &str) {
        if !self.dispatch_valid {
            self.build_leaf_dispatch();
        }
        let base = self.open.len();
        let slot = label.map_or(u32::MAX, |l| l.index() as u32);
        let mut created = std::mem::take(&mut self.scratch_created);
        let dispatch = std::mem::take(&mut self.leaf_dispatch);
        for &(s, c, i, ci) in &dispatch {
            if s == slot {
                let (i, ci) = (i as usize, ci as usize);
                let ord = self.open[i].bind_counts[ci];
                self.open[i].bind_counts[ci] += 1;
                created.push((c, i, ci, ord));
            }
        }
        self.leaf_dispatch = dispatch;
        let dispatch_any = std::mem::take(&mut self.leaf_dispatch_any);
        for &(c, i, ci) in &dispatch_any {
            let (i, ci) = (i as usize, ci as usize);
            let ord = self.open[i].bind_counts[ci];
            self.open[i].bind_counts[ci] += 1;
            created.push((c, i, ci, ord));
        }
        self.leaf_dispatch_any = dispatch_any;
        for (c, i, ci, ord) in created.drain(..) {
            if self.leaf_direct[c as usize] {
                let rows = self.leaf_rowset(c, node, text);
                self.open[i].child_rows[ci].push((ord, rows));
            } else {
                self.create_leaf_instance(c, node, Some((i, ci, ord)), text);
            }
        }
        self.scratch_created = created;
        let mut j = base;
        while j < self.open.len() {
            let var = self.open[j].var as usize;
            for k in 0..self.empty_accepting[var].len() {
                let (ci, c) = self.empty_accepting[var][k];
                let ci = ci as usize;
                let ord = self.open[j].bind_counts[ci];
                self.open[j].bind_counts[ci] += 1;
                if self.leaf_direct[c as usize] {
                    let rows = self.leaf_rowset(c, node, text);
                    self.open[j].child_rows[ci].push((ord, rows));
                } else {
                    self.create_leaf_instance(c, node, Some((j, ci, ord)), text);
                }
            }
            j += 1;
        }
        self.peak_open = self.peak_open.max(self.open.len());
        while self.open.len() > base {
            let mut inst = self.open.pop().expect("non-empty frontier");
            let parent = inst.parent.expect("leaf instances always have parents");
            let rows = self.assemble(&mut inst);
            self.free[inst.var as usize].push(inst);
            self.open[parent.0].child_rows[parent.1].push((parent.2, rows));
        }
    }

    /// The single row of a leaf binding with no ε-bindable children: the
    /// bound position, [`NULL`]-padded child keys, and (for field
    /// variables) the text as its value — no instance needed, since
    /// nothing can bind below an attribute or text node.
    fn leaf_rowset(&mut self, var: u32, node: u32, text: &str) -> RowSet {
        let v = var as usize;
        let kw = self.key_width[v];
        let vw = self.val_width[v];
        let mut keys = self.pooled();
        keys.reserve(kw);
        keys.push(node);
        keys.extend(std::iter::repeat_n(NULL, kw - 1));
        let mut vals = self.pooled();
        vals.reserve(vw);
        if self.value_needed[v] {
            let idx = self.values.len() as u32;
            self.values.push(Value::text(text.to_string()));
            vals.push(idx);
            vals.extend(std::iter::repeat_n(NULL, vw - 1));
        } else {
            vals.extend(std::iter::repeat_n(NULL, vw));
        }
        RowSet {
            keys,
            vals,
            rows: 1,
        }
    }

    fn create_leaf_instance(
        &mut self,
        var: u32,
        node: u32,
        parent: Option<(usize, usize, u32)>,
        text: &str,
    ) {
        let own_ref = if self.value_needed[var as usize] {
            let idx = self.values.len() as u32;
            self.values.push(Value::text(text.to_string()));
            idx
        } else {
            NULL
        };
        self.push_instance(var, node, parent, None, own_ref);
    }

    fn push_instance(
        &mut self,
        var: u32,
        node: u32,
        parent: Option<(usize, usize, u32)>,
        builder: Option<ValueBuilder>,
        own_ref: u32,
    ) {
        let v = var as usize;
        if builder.is_some() {
            self.builders_open += 1;
        }
        let mut inst = match self.free[v].pop() {
            Some(shell) => shell,
            None => {
                let nchild = self.children[v].len();
                Instance {
                    var,
                    node_pos: 0,
                    parent: None,
                    states: (0..nchild).map(|_| Vec::new()).collect(),
                    dead_runs: vec![0; nchild],
                    live: 0,
                    frozen: 0,
                    bind_counts: vec![0; nchild],
                    child_rows: (0..nchild).map(|_| Vec::new()).collect(),
                    builder: None,
                    own_ref: NULL,
                }
            }
        };
        inst.node_pos = node;
        inst.parent = parent;
        inst.builder = builder;
        inst.own_ref = own_ref;
        for (ci, stack) in inst.states.iter_mut().enumerate() {
            stack.clear();
            stack.push(self.matchers[self.children[v][ci] as usize].start());
        }
        for run in &mut inst.dead_runs {
            *run = 0;
        }
        inst.live = inst.dead_runs.len() as u32;
        inst.frozen = 0;
        for count in &mut inst.bind_counts {
            *count = 0;
        }
        self.open.push(inst);
    }

    /// Takes a recycled (or fresh) row buffer from the pool.
    fn pooled(&mut self) -> Vec<u32> {
        match self.u32_pool.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Cross-products an instance's own binding with its children's row
    /// sets (in child order, earlier children varying slower), padding
    /// unbound children with nulls.  Row buffers are drawn from and
    /// returned to the pool; the caller recycles the instance shell.
    fn assemble(&mut self, inst: &mut Instance) -> RowSet {
        let var = inst.var as usize;
        let has_own_val = self.value_needed[var];
        let own_ref = if has_own_val {
            if inst.own_ref != NULL {
                std::mem::replace(&mut inst.own_ref, NULL)
            } else {
                let builder = inst
                    .builder
                    .take()
                    .expect("element field instances carry a builder");
                self.builders_open -= 1;
                let idx = self.values.len() as u32;
                self.values.push(Value::text(builder.finish()));
                idx
            }
        } else {
            NULL
        };
        let nchild = self.children[var].len();
        if nchild == 0 {
            let mut keys = self.pooled();
            keys.push(inst.node_pos);
            let mut vals = self.pooled();
            if has_own_val {
                vals.push(own_ref);
            }
            return RowSet {
                keys,
                vals,
                rows: 1,
            };
        }
        // Flatten each child's closed bindings into one contiguous block in
        // ordinal (document) order — close order of nested `//` bindings
        // can invert it.  Single bindings hand their buffers over whole.
        let mut blocks = std::mem::take(&mut self.scratch_blocks);
        let mut nrows = 1usize;
        for ci in 0..nchild {
            let binds = &mut inst.child_rows[ci];
            let block = match binds.len() {
                0 => (Vec::new(), Vec::new(), 0usize),
                1 => {
                    let (_, rs) = binds.pop().expect("one binding");
                    (rs.keys, rs.vals, rs.rows)
                }
                _ => {
                    binds.sort_unstable_by_key(|(ord, _)| *ord);
                    let m: usize = binds.iter().map(|(_, rs)| rs.rows).sum();
                    let c = self.children[var][ci] as usize;
                    let mut bk = self.pooled();
                    bk.reserve(m * self.key_width[c]);
                    let mut bv = self.pooled();
                    bv.reserve(m * self.val_width[c]);
                    for (_, mut rs) in binds.drain(..) {
                        bk.append(&mut rs.keys);
                        bv.append(&mut rs.vals);
                        self.u32_pool.push(rs.keys);
                        self.u32_pool.push(rs.vals);
                    }
                    (bk, bv, m)
                }
            };
            nrows *= block.2.max(1);
            blocks.push(block);
        }
        // Carry odometer over the child blocks: child `ci` varies faster
        // than `ci - 1`, empty (null-padded) blocks tick through for free,
        // and a row costs amortised O(1) index arithmetic, not a division
        // per child.
        let mut odo = std::mem::take(&mut self.scratch_strides);
        odo.clear();
        odo.resize(nchild, 0);
        let kw = self.key_width[var];
        let vw = self.val_width[var];
        let mut keys = self.pooled();
        keys.reserve(nrows * kw);
        let mut vals = self.pooled();
        vals.reserve(nrows * vw);
        for _ in 0..nrows {
            keys.push(inst.node_pos);
            if has_own_val {
                vals.push(own_ref);
            }
            for ci in 0..nchild {
                let c = self.children[var][ci] as usize;
                let ckw = self.key_width[c];
                let cvw = self.val_width[c];
                let (ck, cv, m) = &blocks[ci];
                if *m == 0 {
                    keys.extend(std::iter::repeat_n(NULL, ckw));
                    vals.extend(std::iter::repeat_n(NULL, cvw));
                } else {
                    let idx = odo[ci];
                    keys.extend_from_slice(&ck[idx * ckw..(idx + 1) * ckw]);
                    vals.extend_from_slice(&cv[idx * cvw..(idx + 1) * cvw]);
                }
            }
            for ci in (0..nchild).rev() {
                odo[ci] += 1;
                if odo[ci] < blocks[ci].2 {
                    break;
                }
                odo[ci] = 0;
            }
        }
        for (bk, bv, _) in blocks.drain(..) {
            if bk.capacity() > 0 {
                self.u32_pool.push(bk);
            }
            if bv.capacity() > 0 {
                self.u32_pool.push(bv);
            }
        }
        self.scratch_blocks = blocks;
        self.scratch_strides = odo;
        RowSet {
            keys,
            vals,
            rows: nrows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sample, Transformation};
    use xmlprop_xmltree::sample::fig1;
    use xmlprop_xmltree::{to_xml, DocIndex, Document, StreamEvent, StreamParser};

    /// Runs `plan` over `xml` through the streaming front end.
    fn stream_shred(plan: &ShredPlan, universe: &LabelUniverse, xml: &str) -> (Relation, usize) {
        let mut parser = StreamParser::with_universe(xml, universe);
        let mut shredder = StreamShredder::new(plan, universe);
        while let Some(event) = parser.next_event().expect("well-formed input") {
            match event {
                StreamEvent::StartElement { name, label } => shredder.start_element(label, name),
                StreamEvent::Attribute { name, label, value } => {
                    shredder.attribute(label, name, &value)
                }
                StreamEvent::Text { value } => shredder.text(&value),
                StreamEvent::EndElement => shredder.end_element(),
            }
        }
        let peak = shredder.peak_open_bindings();
        (shredder.finish(), peak)
    }

    /// Asserts the streamed relation equals the prepared DOM path on `doc`.
    fn assert_matches_dom(t: &Transformation, doc: &Document) {
        let mut universe = LabelUniverse::new();
        let plans = crate::TransformationPlan::new(t, &mut universe);
        let index = DocIndex::build(doc, &mut universe);
        let xml = to_xml(doc);
        for plan in plans.plans() {
            let expected = plan.shred(doc, &index);
            let (streamed, _) = stream_shred(plan, &universe, &xml);
            assert_eq!(streamed, expected, "relation {}", plan.schema().name());
        }
    }

    #[test]
    fn fig1_matches_the_dom_path_on_the_running_example() {
        assert_matches_dom(&sample::example_2_4_transformation(), &fig1());
    }

    #[test]
    fn fig1_matches_the_dom_path_on_the_universal_relation() {
        let t = Transformation::new(vec![sample::example_3_1_universal()]);
        assert_matches_dom(&t, &fig1());
    }

    #[test]
    fn cartesian_products_and_nulls_match() {
        let t = Transformation::parse(
            "rule pairs(a, b) {\n\
             xa := xr//a;\n\
             xb := xr//b;\n\
             a := value(xa);\n\
             b := value(xb);\n\
             }",
        )
        .expect("valid transformation");
        // Two `a`s and three `b`s: a 2×3 product; one book has no `b` at
        // all, exercising the null branch.
        let xml = "<r><a>1</a><a>2</a><b>x</b><b>y</b><b>z</b></r>";
        let doc = xmlprop_xmltree::parse(xml).expect("well-formed");
        assert_matches_dom(&t, &doc);
        let doc = xmlprop_xmltree::parse("<r><a>1</a></r>").expect("well-formed");
        assert_matches_dom(&t, &doc);
    }

    #[test]
    fn nested_descendant_bindings_keep_document_order() {
        // `//sec` binds nested sections: the inner instance closes before
        // the outer one, so the ordinal sort must restore document order.
        let t = Transformation::parse(
            "rule secs(s) {\n\
             xs := xr//sec;\n\
             s := value(xs);\n\
             }",
        )
        .expect("valid transformation");
        let xml = "<r><sec n=\"1\"><sec n=\"2\"><sec n=\"3\"/></sec></sec><sec n=\"4\"/></r>";
        let doc = xmlprop_xmltree::parse(xml).expect("well-formed");
        assert_matches_dom(&t, &doc);
    }

    #[test]
    fn non_preorder_variable_ids_are_sorted_back_to_dom_order() {
        // Declaration order r, a, b, c with c under a: variable ids are not
        // a pre-order of the table tree ([r, a, b, c] but subtree(a) is
        // {a, c}), forcing the key-sort fallback.
        let t = Transformation::parse(
            "rule t(b, c) {\n\
             xa := xr/a;\n\
             xb := xr/b;\n\
             xc := xa/c;\n\
             b := value(xb);\n\
             c := value(xc);\n\
             }",
        )
        .expect("valid transformation");
        let xml = "<r><a><c>c1</c><c>c2</c></a><a><c>c3</c></a><b>b1</b><b>b2</b></r>";
        let doc = xmlprop_xmltree::parse(xml).expect("well-formed");
        assert_matches_dom(&t, &doc);
    }

    #[test]
    fn attribute_and_text_bindings_match() {
        let t = Transformation::parse(
            "rule t(isbn, title) {\n\
             xb := xr//book;\n\
             xi := xb/@isbn;\n\
             xt := xb/title;\n\
             isbn := value(xi);\n\
             title := value(xt);\n\
             }",
        )
        .expect("valid transformation");
        assert_matches_dom(&t, &fig1());
    }

    #[test]
    fn structured_values_match_field_value() {
        // The field variable binds a subtree with attributes, text and
        // nested elements, exercising the incremental serialisation.
        let t = Transformation::parse(
            "rule t(v) {\n\
             xv := xr/item;\n\
             v := value(xv);\n\
             }",
        )
        .expect("valid transformation");
        let xml = "<r><item id=\"7\">lead<sub>inner</sub>tail</item><item>only text</item>\
                   <item/><item><sub a=\"1\"/><sub a=\"2\"/></item></r>";
        let doc = xmlprop_xmltree::parse(xml).expect("well-formed");
        assert_matches_dom(&t, &doc);
    }

    #[test]
    fn peak_open_bindings_is_bounded_by_the_frontier_not_the_document() {
        let t = Transformation::parse(
            "rule t(n) {\n\
             xc := xr/c;\n\
             n := value(xc);\n\
             }",
        )
        .expect("valid transformation");
        let mut xml = String::from("<r>");
        for i in 0..500 {
            xml.push_str(&format!("<c>{i}</c>"));
        }
        xml.push_str("</r>");
        let mut universe = LabelUniverse::new();
        let rule = t.rules().first().expect("one rule");
        let plan = rule.prepare(&mut universe);
        let (relation, peak) = stream_shred(&plan, &universe, &xml);
        assert_eq!(relation.len(), 500);
        // Root + at most one open `c` binding at any instant.
        assert!(peak <= 2, "peak open bindings was {peak}");
    }
}
