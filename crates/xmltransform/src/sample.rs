//! The paper's running transformations.
//!
//! * [`example_2_4_transformation`] — the transformation σ of Example 2.4
//!   mapping the Fig. 1 data to the schema
//!   `book(isbn, title, author, contact)`, `chapter(inBook, number, name)`,
//!   `section(inChapt, number, name)`;
//! * [`example_3_1_universal`] — the universal-relation rule `Rule(U)` of
//!   Example 3.1 / Fig. 4;
//! * [`example_1_1_initial_chapter`] — the *initial* (flawed) `Chapter`
//!   design of Example 1.1, keyed on `(bookTitle, chapterNum)`;
//! * [`example_1_1_refined_chapter`] — the refined design keyed on
//!   `(isbn, chapterNum)`.

use crate::{TableRule, Transformation};

/// The transformation σ of Example 2.4 (see Fig. 3 for the table trees of
/// its `book` and `section` rules).
pub fn example_2_4_transformation() -> Transformation {
    Transformation::parse(
        "rule book(isbn, title, author, contact) {
            xa := xr//book;
            x1 := xa/@isbn;
            x2 := xa/title;
            xd := xa/author;
            x3 := xd/name;
            x4 := xd/contact;
            isbn := value(x1);
            title := value(x2);
            author := value(x3);
            contact := value(x4);
        }
        rule chapter(inBook, number, name) {
            yb := xr//book;
            y1 := yb/@isbn;
            yc := yb/chapter;
            y2 := yc/@number;
            y3 := yc/name;
            inBook := value(y1);
            number := value(y2);
            name := value(y3);
        }
        rule section(inChapt, number, name) {
            zc := xr//book/chapter;
            z1 := zc/@number;
            zs := zc/section;
            z2 := zs/@number;
            z3 := zs/name;
            inChapt := value(z1);
            number := value(z2);
            name := value(z3);
        }",
    )
    .expect("the Example 2.4 transformation is well-formed")
}

/// The universal relation `U` and its table rule of Example 3.1 (Fig. 4).
pub fn example_3_1_universal() -> TableRule {
    crate::parse_single_rule(
        "rule U(bookIsbn, bookTitle, bookAuthor, authContact, chapNum, chapName, secNum, secName) {
            xb := xr//book;
            x1 := xb/@isbn;
            x2 := xb/title;
            xa := xb/author;
            x3 := xa/name;
            x4 := xa/contact;
            yc := xb/chapter;
            y1 := yc/@number;
            y2 := yc/name;
            zs := yc/section;
            z1 := zs/@number;
            z2 := zs/name;
            bookIsbn := value(x1);
            bookTitle := value(x2);
            bookAuthor := value(x3);
            authContact := value(x4);
            chapNum := value(y1);
            chapName := value(y2);
            secNum := value(z1);
            secName := value(z2);
        }",
    )
    .expect("the Example 3.1 universal relation rule is well-formed")
}

/// The initial (flawed) `Chapter(bookTitle, chapterNum, chapterName)` design
/// of Example 1.1: chapters are keyed by the book *title*, which two
/// different books may share.
pub fn example_1_1_initial_chapter() -> TableRule {
    crate::parse_single_rule(
        "rule Chapter(bookTitle, chapterNum, chapterName) {
            b := xr//book;
            t := b/title;
            c := b/chapter;
            n := c/@number;
            m := c/name;
            bookTitle := value(t);
            chapterNum := value(n);
            chapterName := value(m);
        }",
    )
    .expect("well-formed")
}

/// The refined `Chapter(isbn, chapterNum, chapterName)` design of
/// Example 1.1 (Fig. 2(b)), keyed by `(isbn, chapterNum)`.
pub fn example_1_1_refined_chapter() -> TableRule {
    crate::parse_single_rule(
        "rule Chapter(isbn, chapterNum, chapterName) {
            b := xr//book;
            i := b/@isbn;
            c := b/chapter;
            n := c/@number;
            m := c/name;
            isbn := value(i);
            chapterNum := value(n);
            chapterName := value(m);
        }",
    )
    .expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlprop_reldb::Fd;
    use xmlprop_xmltree::sample::fig1;

    #[test]
    fn example_2_4_has_three_rules() {
        let t = example_2_4_transformation();
        assert_eq!(t.len(), 3);
        assert!(t.rule("book").is_some());
        assert!(t.rule("chapter").is_some());
        assert!(t.rule("section").is_some());
    }

    #[test]
    fn universal_relation_has_eight_fields_and_depth_four() {
        let u = example_3_1_universal();
        assert_eq!(u.schema().arity(), 8);
        let tree = u.table_tree();
        // xr -> xb -> yc -> zs -> z2 (secName): four edges.
        assert_eq!(tree.depth(), 4);
        assert_eq!(
            tree.path_from_root("z2").to_string(),
            "//book/chapter/section/name"
        );
    }

    #[test]
    fn initial_design_fails_its_key_on_fig1() {
        // Example 1.1: the initial design's key (bookTitle, chapterNum) is
        // violated by the Fig. 1 data because both books are titled "XML".
        let rel = example_1_1_initial_chapter().shred(&fig1());
        let key = Fd::parse("bookTitle, chapterNum -> chapterName").unwrap();
        assert!(!rel.satisfies_fd_paper(&key));
    }

    #[test]
    fn refined_design_satisfies_its_key_on_fig1() {
        let rel = example_1_1_refined_chapter().shred(&fig1());
        let key = Fd::parse("isbn, chapterNum -> chapterName").unwrap();
        assert!(rel.satisfies_fd_paper(&key));
        assert_eq!(rel.len(), 3);
    }
}
