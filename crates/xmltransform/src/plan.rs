//! Prepared shredding: the compiled form of a table rule.
//!
//! The string-based [`shred_rule`](crate::shred) walk clones a whole
//! `BTreeMap<String, Option<NodeId>>` binding per row per variable and
//! re-evaluates every path through string label comparisons.  A
//! [`ShredPlan`] does the per-rule work once:
//!
//! * every variable gets a dense [`VarId`] (parent-before-child order), so
//!   a binding is a flat row of `u32` DFS positions instead of a string-keyed
//!   map — extending the Cartesian product is a `memcpy`, not a tree clone;
//! * every edge path is compiled ([`xmlprop_xmlpath::CompiledExpr`]) against
//!   a shared [`LabelUniverse`] and evaluated over a prepared
//!   [`DocIndex`] with reusable scratch frontiers;
//! * the `value()` serialization of each bound node is **memoized** per
//!   node, so a node reached by many rows (the upper levels of the product)
//!   is serialized once.
//!
//! The binding table is columnar in spirit — one `u32` slot per
//! (row, variable), stored as fixed-stride rows so row replication on
//! multi-node bindings stays a contiguous copy; rows that bind at most one
//! node per variable (the common case) are extended **in place** with no
//! reallocation at all.
//!
//! [`TableRule::prepare`] builds a plan for one rule;
//! [`Transformation::prepare`] builds a [`TransformationPlan`] covering
//! every rule against one universe, whose
//! [`shred_all`](TransformationPlan::shred_all) shares the `value()` memo
//! across rules of the same document.

use crate::rule::{TableRule, Transformation};
use crate::shred::field_value;
use std::collections::HashMap;
use xmlprop_reldb::{Database, Relation, RelationSchema, Tuple, Value};
use xmlprop_xmlpath::{
    CompiledAtom, CompiledExpr, EvalScratch, LabelId, LabelUniverse, PathCompiler,
};
use xmlprop_xmltree::{DocIndex, Document, NodeId};

/// A dense identifier for a variable of one [`ShredPlan`] (the root
/// variable `xr` is `VarId(0)`; parents precede children).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(u32);

impl VarId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel for "variable bound to null" in the binding table.
const NULL: u32 = u32::MAX;

/// The compiled form of one [`TableRule`]; see the module docs.
#[derive(Debug, Clone)]
pub struct ShredPlan {
    schema: RelationSchema,
    /// Variable names, by [`VarId`] (diagnostics only).
    names: Vec<String>,
    /// Parent [`VarId`] of each variable (`parents[0] == 0` for the root).
    parents: Vec<u32>,
    /// Compiled edge path of each variable (`ε` for the root).
    paths: Vec<CompiledExpr>,
    /// For single-label edge paths (the overwhelmingly common case —
    /// Definition 2.2 forbids `//` below the root variable): the label, so
    /// binding is a direct child scan without the general evaluator.
    single_label: Vec<Option<LabelId>>,
    /// For every schema attribute: the variable whose `value()` fills it.
    field_vars: Vec<u32>,
}

impl ShredPlan {
    /// Compiles a (validated) rule against `universe`.
    ///
    /// The same universe must be used for the [`DocIndex`] the plan later
    /// shreds over (ids are append-only, so plan and index can be prepared
    /// in either order).
    pub fn new(rule: &TableRule, universe: &mut LabelUniverse) -> Self {
        let tree = rule.table_tree();
        let order = tree.variables();
        let id_of: HashMap<&str, u32> = order
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), i as u32))
            .collect();
        let mut parents = Vec::with_capacity(order.len());
        let mut paths = Vec::with_capacity(order.len());
        for var in order {
            match tree.parent(var) {
                Some(p) => {
                    parents.push(id_of[p]);
                    paths.push(universe.compile(tree.edge_path(var).expect("non-root edge")));
                }
                None => {
                    parents.push(0);
                    paths.push(CompiledExpr::epsilon());
                }
            }
        }
        let field_vars = rule
            .schema()
            .attributes()
            .iter()
            .map(|field| {
                id_of[rule
                    .field_var(field)
                    .expect("validated rule covers every field")]
            })
            .collect();
        let single_label = paths
            .iter()
            .map(|p| match p.atoms() {
                [CompiledAtom::Label(l)] => Some(*l),
                _ => None,
            })
            .collect();
        ShredPlan {
            schema: rule.schema().clone(),
            names: order.to_vec(),
            parents,
            paths,
            single_label,
            field_vars,
        }
    }

    /// The relation schema this plan populates.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// The number of variables, root included.
    pub fn var_count(&self) -> usize {
        self.parents.len()
    }

    /// The name of a variable.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.names[var.index()]
    }

    /// The [`VarId`] populating a schema attribute, by attribute position.
    pub fn field_var(&self, field: usize) -> VarId {
        VarId(self.field_vars[field])
    }

    /// Parent variable ids, by [`VarId`] (the streaming shredder rebuilds
    /// the variable tree from these).
    pub(crate) fn parents(&self) -> &[u32] {
        &self.parents
    }

    /// Compiled edge paths, by [`VarId`].
    pub(crate) fn paths(&self) -> &[CompiledExpr] {
        &self.paths
    }

    /// For every schema attribute: the variable id whose `value()` fills it.
    pub(crate) fn field_var_ids(&self) -> &[u32] {
        &self.field_vars
    }

    /// Shreds a document into an instance of this plan's relation —
    /// bit-for-bit the relation [`TableRule::shred`] produces, computed
    /// over the prepared index.  Allocates fresh scratch; batch callers
    /// (many rules / many documents) should reuse a [`ShredScratch`]
    /// through [`ShredPlan::shred_with`].
    pub fn shred(&self, doc: &Document, index: &DocIndex) -> Relation {
        let mut scratch = ShredScratch::new();
        self.shred_with(doc, index, &mut scratch)
    }

    /// [`ShredPlan::shred`] with caller-provided scratch state.
    ///
    /// The scratch's `value()` memo is keyed by DFS position, so it is only
    /// valid for one `(doc, index)` pair at a time; [`ShredScratch::new`]
    /// or [`ShredScratch::reset`] it when switching documents (sharing it
    /// across *rules* over the same document is the point).
    pub fn shred_with(
        &self,
        doc: &Document,
        index: &DocIndex,
        scratch: &mut ShredScratch,
    ) -> Relation {
        index.debug_assert_current(doc);
        let stride = self.parents.len();
        // The binding table: `stride` u32 slots per row, NULL for unbound.
        let mut rows: Vec<u32> = vec![NULL; stride];
        rows[0] = index.position(doc.root());
        self.expand_rows(index, scratch, &mut rows, 1);
        scratch.ensure_values(doc.arena_len());
        let mut relation = Relation::new(self.schema.clone());
        for row in rows.chunks_exact(stride) {
            relation.insert(self.materialize_row(doc, index, scratch, row));
        }
        relation
    }

    /// Extends the binding table by the variables `from..`, replicating
    /// rows on multi-node bindings — the Cartesian-product engine behind
    /// [`ShredPlan::shred_with`] (`from = 1`) and the incremental
    /// [`ShredPlan::shred_block`] (`from = 2`, anchor pre-bound).
    fn expand_rows(
        &self,
        index: &DocIndex,
        scratch: &mut ShredScratch,
        rows: &mut Vec<u32>,
        from: usize,
    ) {
        let stride = self.parents.len();
        for v in from..stride {
            let parent = self.parents[v] as usize;
            let path = &self.paths[v];
            let nrows = rows.len() / stride;
            // In a Cartesian product the same parent node backs many rows;
            // memoize this variable's bindings per parent position (ranges
            // into one pooled vector) so each (variable, parent) pair is
            // evaluated once.
            scratch.binding_memo.clear();
            scratch.binding_pool.clear();
            let mut last_parent = NULL;
            let mut last_range = (0u32, 0u32);
            // `expanded` stays `None` while every row binds at most one
            // node — then the column is filled in place.  The first
            // multi-node binding switches to copy-and-replicate.
            let mut expanded: Option<Vec<u32>> = None;
            for r in 0..nrows {
                let base = r * stride;
                let parent_pos = rows[base + parent];
                let (lo, hi) = if parent_pos == NULL {
                    (0, 0)
                } else if last_parent == parent_pos {
                    // Rows sharing a parent cluster in runs; skip the map.
                    last_range
                } else {
                    match scratch.binding_memo.get(&parent_pos) {
                        Some(&range) => range,
                        None => {
                            let lo = scratch.binding_pool.len() as u32;
                            match self.single_label[v] {
                                // Single-label edge: direct child scan,
                                // already in document order.
                                Some(label) => {
                                    for c in index.children_at(parent_pos) {
                                        if index.label_at(c) == label {
                                            scratch.binding_pool.push(c);
                                        }
                                    }
                                }
                                None => {
                                    path.evaluate_positions(
                                        index,
                                        parent_pos,
                                        &mut scratch.eval,
                                        &mut scratch.out,
                                    );
                                    scratch.binding_pool.extend_from_slice(&scratch.out);
                                }
                            }
                            let range = (lo, scratch.binding_pool.len() as u32);
                            scratch.binding_memo.insert(parent_pos, range);
                            range
                        }
                    }
                };
                if parent_pos != NULL {
                    last_parent = parent_pos;
                    last_range = (lo, hi);
                }
                let bindings: &[u32] = &scratch.binding_pool[lo as usize..hi as usize];
                match expanded.as_mut() {
                    None => {
                        if bindings.len() <= 1 {
                            rows[base + v] = bindings.first().copied().unwrap_or(NULL);
                        } else {
                            let mut wide =
                                Vec::with_capacity(rows.len() + (bindings.len() - 1) * stride);
                            wide.extend_from_slice(&rows[..base]);
                            for &b in bindings {
                                let row_start = wide.len();
                                wide.extend_from_slice(&rows[base..base + stride]);
                                wide[row_start + v] = b;
                            }
                            expanded = Some(wide);
                        }
                    }
                    Some(wide) => {
                        if bindings.is_empty() {
                            let row_start = wide.len();
                            wide.extend_from_slice(&rows[base..base + stride]);
                            wide[row_start + v] = NULL;
                        } else {
                            for &b in bindings {
                                let row_start = wide.len();
                                wide.extend_from_slice(&rows[base..base + stride]);
                                wide[row_start + v] = b;
                            }
                        }
                    }
                }
            }
            if let Some(wide) = expanded {
                *rows = wide;
            }
        }
    }

    /// Materializes one binding row into a tuple through the node-keyed
    /// `value()` memo (caller must have sized it via
    /// [`ShredScratch::ensure_values`]).
    fn materialize_row(
        &self,
        doc: &Document,
        index: &DocIndex,
        scratch: &mut ShredScratch,
        row: &[u32],
    ) -> Tuple {
        let values: Vec<Value> = self
            .field_vars
            .iter()
            .map(|&v| match row[v as usize] {
                NULL => Value::Null,
                pos => {
                    let node = index.node_at(pos);
                    let slot = &mut scratch.values[node.index()];
                    slot.get_or_insert_with(|| Value::text(field_value(doc, node)))
                        .clone()
                }
            })
            .collect();
        Tuple::new(values)
    }

    /// The anchor variable of a block-decomposable plan, if any.
    ///
    /// A plan is block-decomposable when the root variable has exactly one
    /// child variable (necessarily `VarId(1)`: variables are ordered
    /// parent-before-child) and no schema field reads `value(xr)`.  Every
    /// other variable then descends from that **anchor**, so the shredded
    /// relation is the concatenation, in document order, of independent
    /// per-anchor-binding tuple blocks — the unit of reuse of the
    /// incremental shredder.
    pub(crate) fn anchor_var(&self) -> Option<VarId> {
        let stride = self.parents.len();
        if stride < 2 || self.field_vars.contains(&0) {
            return None;
        }
        if (2..stride).any(|v| self.parents[v] == 0) {
            return None;
        }
        Some(VarId(1))
    }

    /// Shreds the tuple block of one anchor binding (see
    /// [`ShredPlan::anchor_var`]): the rows [`ShredPlan::shred_with`] would
    /// emit for this anchor node, in the same order.
    pub(crate) fn shred_block(
        &self,
        doc: &Document,
        index: &DocIndex,
        scratch: &mut ShredScratch,
        anchor_pos: u32,
    ) -> Vec<Tuple> {
        let stride = self.parents.len();
        let mut rows: Vec<u32> = vec![NULL; stride];
        rows[0] = index.position(doc.root());
        rows[1] = anchor_pos;
        self.expand_rows(index, scratch, &mut rows, 2);
        scratch.ensure_values(doc.arena_len());
        rows.chunks_exact(stride)
            .map(|row| self.materialize_row(doc, index, scratch, row))
            .collect()
    }

    /// The all-null tuple a plan emits when its variables bind nothing —
    /// the relation content of a block-decomposable plan with zero anchor
    /// bindings.
    pub(crate) fn null_tuple(&self) -> Tuple {
        Tuple::new(vec![Value::Null; self.field_vars.len()])
    }
}

/// Reusable scratch for [`ShredPlan::shred_with`]: evaluation frontiers and
/// the per-node `value()` memo.
#[derive(Debug, Default)]
pub struct ShredScratch {
    eval: EvalScratch,
    out: Vec<u32>,
    /// Parent position → binding range of the variable being extended
    /// (cleared per variable).
    binding_memo: HashMap<u32, (u32, u32)>,
    /// Pool backing the memoized binding ranges.
    binding_pool: Vec<u32>,
    /// [`NodeId`] index → memoized field value of that node (dense, sized
    /// to the document arena on first use).  Node-keyed rather than
    /// position-keyed so the memo survives deltas: positions shift under
    /// edits, node ids do not.
    values: Vec<Option<Value>>,
}

impl ShredScratch {
    /// A fresh scratch.
    pub fn new() -> Self {
        ShredScratch::default()
    }

    /// Clears the `value()` memo (required when switching to a different
    /// document); evaluation buffers are kept.
    pub fn reset(&mut self) {
        self.values.clear();
    }

    /// Grows the `value()` memo to cover a document arena of `arena_len`
    /// nodes (existing entries are kept).
    fn ensure_values(&mut self, arena_len: usize) {
        if self.values.len() < arena_len {
            self.values.resize(arena_len, None);
        }
    }

    /// Drops the memoized `value()` of the given nodes — after a delta,
    /// exactly the dirty ancestor chain's serializations are stale (nodes
    /// off the chain kept their subtree content; fresh nodes have no
    /// entry; removed nodes are never queried again).
    pub fn invalidate_values(&mut self, nodes: &[NodeId]) {
        for &node in nodes {
            if let Some(slot) = self.values.get_mut(node.index()) {
                *slot = None;
            }
        }
    }
}

/// The compiled form of a whole [`Transformation`]: one [`ShredPlan`] per
/// rule, compiled against one shared universe.
#[derive(Debug, Clone)]
pub struct TransformationPlan {
    plans: Vec<ShredPlan>,
}

impl TransformationPlan {
    /// Compiles every rule of the transformation against `universe`.
    pub fn new(transformation: &Transformation, universe: &mut LabelUniverse) -> Self {
        TransformationPlan {
            plans: transformation
                .rules()
                .iter()
                .map(|rule| ShredPlan::new(rule, universe))
                .collect(),
        }
    }

    /// The per-rule plans, in transformation order.
    pub fn plans(&self) -> &[ShredPlan] {
        &self.plans
    }

    /// The plan for one relation, by name.
    pub fn plan(&self, relation: &str) -> Option<&ShredPlan> {
        self.plans.iter().find(|p| p.schema().name() == relation)
    }

    /// Shreds a document into a database with one instance per rule —
    /// bit-for-bit what [`Transformation::shred`] produces — sharing one
    /// scratch (and thus one `value()` memo) across all rules.
    pub fn shred_all(&self, doc: &Document, index: &DocIndex) -> Database {
        index.debug_assert_current(doc);
        let mut scratch = ShredScratch::new();
        let mut db = Database::new();
        for plan in &self.plans {
            db.insert(plan.shred_with(doc, index, &mut scratch));
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample;
    use xmlprop_xmltree::sample::fig1;
    use xmlprop_xmltree::ElementBuilder;

    /// Prepares (universe, index, plan set) for a transformation over a doc.
    fn prepared(
        t: &Transformation,
        doc: &Document,
    ) -> (LabelUniverse, DocIndex, TransformationPlan) {
        let mut universe = LabelUniverse::new();
        let plan = TransformationPlan::new(t, &mut universe);
        let index = DocIndex::build(doc, &mut universe);
        (universe, index, plan)
    }

    #[test]
    fn prepared_shredding_matches_the_string_baseline_on_the_samples() {
        let doc = fig1();
        for t in [
            sample::example_2_4_transformation(),
            xmlprop_bookstore_universal(),
        ] {
            let (_u, index, plan) = prepared(&t, &doc);
            for (rule, rule_plan) in t.rules().iter().zip(plan.plans()) {
                assert_eq!(
                    rule_plan.shred(&doc, &index),
                    rule.shred(&doc),
                    "rule {}",
                    rule.schema().name()
                );
            }
            assert_eq!(plan.shred_all(&doc, &index), t.shred(&doc));
        }
    }

    fn xmlprop_bookstore_universal() -> Transformation {
        let mut t = Transformation::new(Vec::new());
        t.add_rule(sample::example_3_1_universal());
        t
    }

    #[test]
    fn plan_shape_accessors() {
        let t = sample::example_2_4_transformation();
        let mut universe = LabelUniverse::new();
        let rule = t.rule("section").unwrap();
        let plan = rule.prepare(&mut universe);
        assert_eq!(plan.schema().name(), "section");
        assert_eq!(plan.var_count(), rule.mappings().len() + 1);
        assert_eq!(plan.var_name(VarId(0)), "xr");
        let field0 = plan.field_var(0);
        assert!(field0.index() > 0);
        let whole = t.prepare(&mut universe);
        assert_eq!(whole.plans().len(), t.len());
        assert!(whole.plan("section").is_some());
        assert!(whole.plan("nope").is_none());
    }

    #[test]
    fn cartesian_expansion_matches_baseline() {
        // 2 authors × 3 chapters forces row replication mid-table.
        let doc = ElementBuilder::new("r")
            .child(
                ElementBuilder::new("book")
                    .attr("isbn", "1")
                    .child(ElementBuilder::new("author").text_child("name", "A"))
                    .child(ElementBuilder::new("author").text_child("name", "B"))
                    .children(
                        (1..=3)
                            .map(|i| ElementBuilder::new("chapter").attr("number", i.to_string())),
                    ),
            )
            .build();
        let t = Transformation::parse(
            "rule pairs(isbn, author, chapter) {
                xb := xr//book;
                xi := xb/@isbn;
                xa := xb/author;
                xn := xa/name;
                xc := xb/chapter;
                xm := xc/@number;
                isbn := value(xi);
                author := value(xn);
                chapter := value(xm);
            }",
        )
        .unwrap();
        let rule = t.rule("pairs").unwrap();
        let (_u, index, plan) = prepared(&t, &doc);
        let prepared_rel = plan.plan("pairs").unwrap().shred(&doc, &index);
        assert_eq!(prepared_rel.len(), 6);
        assert_eq!(prepared_rel, rule.shred(&doc));
    }

    #[test]
    fn nulls_and_empty_documents_match_baseline() {
        let t = sample::example_2_4_transformation();
        let empty = Document::new("r");
        let (_u, index, plan) = prepared(&t, &empty);
        for (rule, rule_plan) in t.rules().iter().zip(plan.plans()) {
            assert_eq!(rule_plan.shred(&empty, &index), rule.shred(&empty));
        }
    }

    #[test]
    fn scratch_reuse_across_rules_is_safe() {
        let t = sample::example_2_4_transformation();
        let doc = fig1();
        let (_u, index, plan) = prepared(&t, &doc);
        let mut scratch = ShredScratch::new();
        for (rule, rule_plan) in t.rules().iter().zip(plan.plans()) {
            assert_eq!(
                rule_plan.shred_with(&doc, &index, &mut scratch),
                rule.shred(&doc)
            );
        }
        // Switching documents requires a memo reset.
        let other = ElementBuilder::new("r")
            .child(ElementBuilder::new("book").attr("isbn", "9"))
            .build();
        scratch.reset();
        let mut universe2 = LabelUniverse::new();
        let plan2 = TransformationPlan::new(&t, &mut universe2);
        let index2 = DocIndex::build(&other, &mut universe2);
        for (rule, rule_plan) in t.rules().iter().zip(plan2.plans()) {
            assert_eq!(
                rule_plan.shred_with(&other, &index2, &mut scratch),
                rule.shred(&other)
            );
        }
    }
}
