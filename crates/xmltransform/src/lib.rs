//! The XML-to-relations transformation language of the paper (Definition 2.2).
//!
//! A **transformation** `σ` maps XML documents to instances of a fixed
//! relational schema `R = (R1, …, Rn)`.  It consists of one **table rule**
//! per relation.  A table rule for `Ri` has:
//!
//! * a set of **variables**, one of which (`xr`) is the distinguished *root
//!   variable*;
//! * **variable mappings** `x := y/P` binding each variable to the nodes
//!   reached by path `P` from its parent variable `y` (the path must be
//!   simple — no `//` — unless `y` is the root variable);
//! * **field rules** `f := value(x)` populating each field of `Ri` from the
//!   `value()` serialization of the node bound to `x` (only leaf variables,
//!   i.e. variables that are not the parent of another variable, may carry
//!   field rules).
//!
//! A rule is represented abstractly by its **table tree** (Fig. 3/4 of the
//! paper): variables are nodes, edges are labelled with the mapping paths.
//!
//! The **semantics** (Section 2, Example 2.5): variables range over the node
//! sets reached by their paths, an implicit Cartesian product covers
//! repeated nodes, and missing branches produce `null` fields.
//!
//! This crate provides:
//!
//! * [`TableRule`], [`Transformation`] with the well-formedness checks of
//!   Definition 2.2 (see [`RuleError`]);
//! * [`TableTree`] — the tree view used by all the propagation algorithms
//!   (`parent`, ancestors, `path(y, x)`, depth);
//! * shredding: [`TableRule::shred`] / [`Transformation::shred`] producing
//!   [`xmlprop_reldb::Relation`]s / [`xmlprop_reldb::Database`]s (the
//!   one-shot string walk), and the prepared [`ShredPlan`] /
//!   [`TransformationPlan`] ([`TableRule::prepare`] /
//!   [`Transformation::prepare`]) shredding over a
//!   [`xmlprop_xmltree::DocIndex`] with dense [`VarId`] binding rows and
//!   memoized `value()` serialization;
//! * a concise textual syntax ([`Transformation::parse`]) used by examples,
//!   tests and the workload generator;
//! * streaming execution: [`StreamShredder`] runs a [`ShredPlan`] over parse
//!   events with an open-binding frontier, never materialising a document —
//!   peak memory is bounded by depth plus open bindings, and the produced
//!   relation is bit-for-bit the DOM result;
//! * incremental re-shredding: [`IncrementalShredder`] maintains the
//!   shredded database under [`xmlprop_xmltree::Document::apply`] edits by
//!   caching per-anchor tuple blocks, re-shredding only blocks on the
//!   edit's dirty ancestor chain and reporting tuple-level
//!   [`RelationDelta`]s;
//! * the paper's running transformation (Example 2.4) and universal relation
//!   (Example 3.1) in [`sample`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delta;
mod parse;
mod plan;
mod rule;
pub mod sample;
mod shred;
mod stream;
mod tree;

pub use delta::{IncrementalShredder, RelationDelta};
pub use parse::{parse_single_rule, ParseRuleError};
pub use plan::{ShredPlan, ShredScratch, TransformationPlan, VarId};
pub use rule::{FieldRule, RuleError, TableRule, Transformation, VarMapping, ROOT_VAR};
pub use shred::count_bindings;
pub use stream::StreamShredder;
pub use tree::TableTree;
