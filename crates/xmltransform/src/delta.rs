//! Incremental re-shredding under document deltas.
//!
//! [`IncrementalShredder`] keeps the shredded output of a
//! [`TransformationPlan`] in delta-maintainable form.  For a
//! **block-decomposable** plan (see `ShredPlan::anchor_var`: the root
//! variable has a single child variable, the *anchor*, and no field reads
//! `value(xr)`), the relation is the concatenation — in document order —
//! of independent tuple blocks, one per anchor binding.  Tuples of a block
//! only depend on the subtree under the anchor, and they store
//! materialized value *strings*, not positions, so a cached block stays
//! valid as long as the edit's dirty ancestor chain
//! ([`AppliedDelta::dirty_node`] and its ancestors) misses its anchor.
//! Each [`IncrementalShredder::apply`] re-evaluates the anchor binding set
//! over the patched [`DocIndex`] (a cheap path scan), re-shreds only
//! dirty or new blocks, and reports the tuple-level effect per relation
//! as [`RelationDelta`] insert/delete sets.
//!
//! Plans that are not block-decomposable (several root-child variables
//! form a root-level Cartesian product, or a field reads `value(xr)`)
//! fall back to a full re-shred over the patched index plus a multiset
//! diff — still rebuild-free on the index side, and the node-keyed
//! `value()` memo (invalidated only along the dirty chain) carries most
//! serializations over.
//!
//! [`IncrementalShredder::database`] reassembles the full [`Database`]
//! bit-for-bit equal to [`TransformationPlan::shred_all`] on the mutated
//! document, which the differential proptests pin.

use crate::plan::{ShredScratch, TransformationPlan};
use std::collections::HashMap;
use xmlprop_reldb::{Database, Relation, Tuple};
use xmlprop_xmlpath::EvalScratch;
use xmlprop_xmltree::{AppliedDelta, DocIndex, Document, NodeId};

/// The tuple-level effect of one delta on one relation: the tuples that
/// left the instance and the tuples that entered it (bag semantics; a
/// tuple appearing `n` times more than before occurs `n` times in
/// `inserted`).  Ordering within each set is deterministic but otherwise
/// unspecified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationDelta {
    relation: String,
    inserted: Vec<Tuple>,
    deleted: Vec<Tuple>,
}

impl RelationDelta {
    /// The name of the affected relation.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The tuples inserted into the relation by the delta.
    pub fn inserted(&self) -> &[Tuple] {
        &self.inserted
    }

    /// The tuples deleted from the relation by the delta.
    pub fn deleted(&self) -> &[Tuple] {
        &self.deleted
    }

    /// True if the delta left the relation unchanged.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }
}

/// Delta-maintained shredding state for one document against one
/// [`TransformationPlan`]; see the module docs.
#[derive(Debug)]
pub struct IncrementalShredder {
    /// Per rule of the transformation, in plan order.
    rules: Vec<RuleState>,
    /// [`Document::epoch`] the state is current for.
    epoch: u64,
    scratch: ShredScratch,
    eval: EvalScratch,
    /// Anchor position buffer of the rule being refreshed.
    apos: Vec<u32>,
}

/// Updatable shredding state of one rule.
#[derive(Debug)]
enum RuleState {
    /// Block-decomposable plan: cached tuple blocks per anchor node.
    Blocks {
        /// Current anchor bindings, in document order (the relation is
        /// their blocks concatenated; empty ⇒ the single all-null row).
        anchors: Vec<NodeId>,
        /// Anchor node → its tuple block.
        blocks: HashMap<NodeId, Vec<Tuple>>,
    },
    /// Fallback: the full current row list, re-shredded per delta.
    Full { rows: Vec<Tuple> },
}

impl IncrementalShredder {
    /// Builds the full shredding state for `doc` (equivalent to one
    /// [`TransformationPlan::shred_all`] pass, stored in updatable form).
    /// `index` must be current for `doc` and built against the plan's
    /// universe.
    pub fn new(plan: &TransformationPlan, doc: &Document, index: &DocIndex) -> Self {
        index.debug_assert_current(doc);
        let mut shredder = IncrementalShredder {
            rules: Vec::with_capacity(plan.plans().len()),
            epoch: doc.epoch(),
            scratch: ShredScratch::new(),
            eval: EvalScratch::default(),
            apos: Vec::new(),
        };
        for rule in plan.plans() {
            let state = if rule.anchor_var().is_some() {
                shredder.eval_anchors(rule, doc, index);
                let anchors: Vec<NodeId> =
                    shredder.apos.iter().map(|&p| index.node_at(p)).collect();
                let blocks = anchors
                    .iter()
                    .zip(shredder.apos.clone())
                    .map(|(&a, p)| (a, rule.shred_block(doc, index, &mut shredder.scratch, p)))
                    .collect();
                RuleState::Blocks { anchors, blocks }
            } else {
                RuleState::Full {
                    rows: rule
                        .shred_with(doc, index, &mut shredder.scratch)
                        .rows()
                        .to_vec(),
                }
            };
            shredder.rules.push(state);
        }
        shredder
    }

    /// Adjusts the state for one applied delta and reports the tuple-level
    /// effect (one [`RelationDelta`] per relation the delta touched).
    /// Call order per edit: [`Document::apply`], then
    /// [`DocIndex::apply_delta`], then this — the index must already be
    /// patched, and the shredder must have seen every earlier delta (both
    /// debug-asserted via epochs).
    pub fn apply(
        &mut self,
        plan: &TransformationPlan,
        doc: &Document,
        index: &DocIndex,
        applied: &AppliedDelta,
    ) -> Vec<RelationDelta> {
        index.debug_assert_current(doc);
        debug_assert_eq!(
            self.epoch + 1,
            doc.epoch(),
            "the incremental shredder must see every delta exactly once",
        );
        let mut chain = vec![applied.dirty_node()];
        chain.extend(doc.ancestors(applied.dirty_node()));
        // The chain nodes' subtree serializations changed; everything else
        // in the value() memo stays valid.
        self.scratch.invalidate_values(&chain);

        let mut out = Vec::new();
        for (r, rule) in plan.plans().iter().enumerate() {
            let mut delta = RelationDelta {
                relation: rule.schema().name().to_string(),
                inserted: Vec::new(),
                deleted: Vec::new(),
            };
            // `self.rules[r]` is taken apart manually (instead of a zipped
            // iterator) so `self.eval_anchors` / `self.scratch` stay
            // borrowable inside the match.
            match std::mem::replace(&mut self.rules[r], RuleState::Full { rows: Vec::new() }) {
                RuleState::Blocks {
                    anchors: old_anchors,
                    mut blocks,
                } => {
                    self.eval_anchors(rule, doc, index);
                    let new_anchors: Vec<NodeId> =
                        self.apos.iter().map(|&p| index.node_at(p)).collect();
                    let positions = self.apos.clone();
                    for (i, &a) in new_anchors.iter().enumerate() {
                        let clean = !chain.contains(&a) && blocks.contains_key(&a);
                        if clean {
                            continue;
                        }
                        let fresh = rule.shred_block(doc, index, &mut self.scratch, positions[i]);
                        match blocks.insert(a, fresh.clone()) {
                            Some(old) if old == fresh => {}
                            Some(old) => {
                                delta.deleted.extend(old);
                                delta.inserted.extend(fresh);
                            }
                            None => delta.inserted.extend(fresh),
                        }
                    }
                    // Garbage-collect blocks whose anchors vanished.
                    if old_anchors != new_anchors {
                        for &a in &old_anchors {
                            if !new_anchors.contains(&a) {
                                if let Some(old) = blocks.remove(&a) {
                                    delta.deleted.extend(old);
                                }
                            }
                        }
                        // An empty binding set stands for the single
                        // all-null row; account for it (dis)appearing.
                        if old_anchors.is_empty() && !new_anchors.is_empty() {
                            delta.deleted.push(rule.null_tuple());
                        } else if new_anchors.is_empty() && !old_anchors.is_empty() {
                            delta.inserted.push(rule.null_tuple());
                        }
                    }
                    self.rules[r] = RuleState::Blocks {
                        anchors: new_anchors,
                        blocks,
                    };
                }
                RuleState::Full { rows: old } => {
                    let rows = rule
                        .shred_with(doc, index, &mut self.scratch)
                        .rows()
                        .to_vec();
                    // Bag difference old ↔ new.
                    let mut counts: HashMap<&Tuple, i64> = HashMap::new();
                    for t in &rows {
                        *counts.entry(t).or_insert(0) += 1;
                    }
                    for t in &old {
                        *counts.entry(t).or_insert(0) -= 1;
                    }
                    let mut changed: Vec<(&Tuple, i64)> =
                        counts.into_iter().filter(|&(_, n)| n != 0).collect();
                    changed.sort_unstable_by(|a, b| a.0.cmp(b.0));
                    for (t, n) in changed {
                        for _ in 0..n.abs() {
                            if n > 0 {
                                delta.inserted.push(t.clone());
                            } else {
                                delta.deleted.push(t.clone());
                            }
                        }
                    }
                    self.rules[r] = RuleState::Full { rows };
                }
            }
            if !delta.is_empty() {
                out.push(delta);
            }
        }
        self.epoch = doc.epoch();
        out
    }

    /// Reassembles the full database — bit-for-bit what
    /// [`TransformationPlan::shred_all`] produces on the mutated document.
    pub fn database(&self, plan: &TransformationPlan) -> Database {
        let mut db = Database::new();
        for (rule, state) in plan.plans().iter().zip(&self.rules) {
            let mut relation = Relation::new(rule.schema().clone());
            match state {
                RuleState::Blocks { anchors, blocks } => {
                    if anchors.is_empty() {
                        relation.insert(rule.null_tuple());
                    } else {
                        for a in anchors {
                            for t in &blocks[a] {
                                relation.insert(t.clone());
                            }
                        }
                    }
                }
                RuleState::Full { rows } => {
                    for t in rows {
                        relation.insert(t.clone());
                    }
                }
            }
            db.insert(relation);
        }
        db
    }

    /// Evaluates a rule's anchor bindings from the document root into
    /// `self.apos` (document order).
    fn eval_anchors(&mut self, rule: &crate::plan::ShredPlan, doc: &Document, index: &DocIndex) {
        rule.paths()[1].evaluate_positions(
            index,
            index.position(doc.root()),
            &mut self.eval,
            &mut self.apos,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Transformation;
    use crate::sample;
    use xmlprop_xmlpath::LabelUniverse;
    use xmlprop_xmltree::sample::fig1;
    use xmlprop_xmltree::{Delta, Fragment};

    /// Applies a script of deltas, asserting after each one that the
    /// incrementally maintained database equals a from-scratch shred
    /// bit-for-bit, and that the reported tuple deltas account exactly for
    /// the difference in each relation's bag of rows.
    fn run_script(t: &Transformation, mut doc: Document, script: Vec<Delta>) {
        let mut universe = LabelUniverse::new();
        let plan = TransformationPlan::new(t, &mut universe);
        let mut index = DocIndex::build(&doc, &mut universe);
        let mut shredder = IncrementalShredder::new(&plan, &doc, &index);
        assert_eq!(shredder.database(&plan), plan.shred_all(&doc, &index));
        for delta in &script {
            let before = shredder.database(&plan);
            let applied = doc.apply(delta).unwrap();
            index.apply_delta(&doc, &applied, &mut universe);
            let reported = shredder.apply(&plan, &doc, &index, &applied);
            let expected = plan.shred_all(&doc, &index);
            assert_eq!(shredder.database(&plan), expected, "after {delta:?}");
            // The reported deltas must transform each old bag into the new.
            for rule in plan.plans() {
                let name = rule.schema().name();
                let mut bag: HashMap<Tuple, i64> = HashMap::new();
                for t in before.get(name).unwrap().rows() {
                    *bag.entry(t.clone()).or_insert(0) += 1;
                }
                if let Some(d) = reported.iter().find(|d| d.relation() == name) {
                    for t in d.deleted() {
                        *bag.entry(t.clone()).or_insert(0) -= 1;
                    }
                    for t in d.inserted() {
                        *bag.entry(t.clone()).or_insert(0) += 1;
                    }
                }
                for t in expected.get(name).unwrap().rows() {
                    *bag.entry(t.clone()).or_insert(0) -= 1;
                }
                assert!(
                    bag.values().all(|&n| n == 0),
                    "tuple delta for {name} does not reconcile after {delta:?}",
                );
            }
        }
    }

    #[test]
    fn incremental_tracks_scratch_on_fig1_edits() {
        let doc = fig1();
        let books: Vec<NodeId> = doc
            .all_nodes()
            .into_iter()
            .filter(|&n| doc.label(n) == "book")
            .collect();
        let isbn1 = doc.attribute_node(books[1], "isbn").unwrap();
        let chapter = doc.children_labelled(books[0], "chapter").next().unwrap();
        let script = vec![
            Delta::SetText {
                node: isbn1,
                text: "777".into(),
            },
            Delta::InsertSubtree {
                parent: doc.root(),
                position: 0,
                fragment: Fragment::Element(
                    Document::parse_str(
                        "<book isbn=\"42\"><title>New</title><author><name>N</name>\
                         <contact><phone>1</phone></contact></author>\
                         <chapter number=\"9\"><name>C9</name></chapter></book>",
                    )
                    .unwrap(),
                ),
            },
            Delta::RemoveSubtree { node: chapter },
            Delta::RemoveSubtree { node: books[1] },
        ];
        run_script(&sample::example_2_4_transformation(), doc, script);
    }

    #[test]
    fn universal_rule_falls_back_and_still_reconciles() {
        // The universal bookstore rule reads several root-level variables,
        // keeping it out of the block decomposition; the fallback must
        // still produce exact databases and reconciling deltas.
        let mut t = Transformation::new(Vec::new());
        t.add_rule(sample::example_3_1_universal());
        let doc = fig1();
        let books: Vec<NodeId> = doc
            .all_nodes()
            .into_iter()
            .filter(|&n| doc.label(n) == "book")
            .collect();
        let isbn0 = doc.attribute_node(books[0], "isbn").unwrap();
        let script = vec![
            Delta::SetText {
                node: isbn0,
                text: "000".into(),
            },
            Delta::RemoveSubtree { node: books[0] },
        ];
        run_script(&t, doc, script);
    }

    #[test]
    fn emptying_and_refilling_the_anchor_set_round_trips() {
        let doc = Document::parse_str(
            r#"<db><book isbn="1"><title>T</title><chapter number="1"><name>A</name></chapter></book></db>"#,
        )
        .unwrap();
        let book = doc.children(doc.root()).next().unwrap();
        let script = vec![
            // Remove the only book: every per-book relation collapses to
            // its all-null row.
            Delta::RemoveSubtree { node: book },
            // Insert a different one: the null row disappears again.
            Delta::InsertSubtree {
                parent: doc.root(),
                position: 0,
                fragment: Fragment::Element(
                    Document::parse_str(
                        "<book isbn=\"2\"><title>U</title><chapter number=\"3\"><name>B</name></chapter></book>",
                    )
                    .unwrap(),
                ),
            },
        ];
        run_script(&sample::example_2_4_transformation(), doc, script);
    }
}
