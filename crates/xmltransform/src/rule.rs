//! Table rules and transformations (Definition 2.2).

use crate::TableTree;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use xmlprop_reldb::RelationSchema;
use xmlprop_xmlpath::PathExpr;

/// The conventional name of the root variable.
pub const ROOT_VAR: &str = "xr";

/// A variable mapping `var := parent/path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarMapping {
    /// The variable being defined.
    pub var: String,
    /// Its parent variable (`xr` for the root).
    pub parent: String,
    /// The path followed from the parent's node to bind this variable.
    pub path: PathExpr,
}

/// A field rule `field := value(var)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldRule {
    /// The relational field being populated.
    pub field: String,
    /// The variable whose `value()` populates it.
    pub var: String,
}

/// Why a table rule is not well-formed according to Definition 2.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// A variable is defined more than once.
    DuplicateVariable(String),
    /// A mapping refers to a parent variable that is never defined (and is
    /// not the root variable).
    UnknownParent {
        /// The variable whose mapping is broken.
        var: String,
        /// The undefined parent it refers to.
        parent: String,
    },
    /// A variable is not connected to the root (cycle or dangling chain).
    NotConnectedToRoot(String),
    /// A mapping from a non-root parent uses `//`, which Definition 2.2
    /// forbids.
    NonSimplePath {
        /// The offending variable.
        var: String,
        /// The offending path.
        path: String,
    },
    /// A field rule refers to a variable that has no mapping.
    UnknownFieldVariable {
        /// The field whose rule is broken.
        field: String,
        /// The unmapped variable it refers to.
        var: String,
    },
    /// A field rule is attached to an internal variable (one that is the
    /// parent of another variable).
    FieldOnInternalVariable {
        /// The offending field.
        field: String,
        /// The internal variable it refers to.
        var: String,
    },
    /// Two field rules use the same variable (the paper requires a distinct
    /// variable per field).
    SharedFieldVariable {
        /// The variable used twice.
        var: String,
    },
    /// A field appears in more than one field rule.
    DuplicateField(String),
    /// A relation field has no field rule.
    MissingField(String),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::DuplicateVariable(v) => write!(f, "variable `{v}` is defined twice"),
            RuleError::UnknownParent { var, parent } => {
                write!(f, "variable `{var}` refers to undefined parent `{parent}`")
            }
            RuleError::NotConnectedToRoot(v) => {
                write!(f, "variable `{v}` is not connected to the root variable")
            }
            RuleError::NonSimplePath { var, path } => write!(
                f,
                "variable `{var}` uses non-simple path `{path}` from a non-root parent"
            ),
            RuleError::UnknownFieldVariable { field, var } => {
                write!(f, "field `{field}` refers to unmapped variable `{var}`")
            }
            RuleError::FieldOnInternalVariable { field, var } => write!(
                f,
                "field `{field}` is defined on internal variable `{var}` (which has children)"
            ),
            RuleError::SharedFieldVariable { var } => {
                write!(f, "variable `{var}` populates more than one field")
            }
            RuleError::DuplicateField(x) => write!(f, "field `{x}` has two field rules"),
            RuleError::MissingField(x) => write!(f, "field `{x}` has no field rule"),
        }
    }
}

impl std::error::Error for RuleError {}

/// A table rule `Rule(R)` for one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRule {
    schema: RelationSchema,
    mappings: Vec<VarMapping>,
    fields: Vec<FieldRule>,
}

impl TableRule {
    /// Creates and validates a table rule.
    ///
    /// `mappings` define the variables (the root variable `xr` is implicit
    /// and must not be mapped); `fields` must cover exactly the attributes of
    /// `schema`.
    pub fn new(
        schema: RelationSchema,
        mappings: Vec<VarMapping>,
        fields: Vec<FieldRule>,
    ) -> Result<Self, RuleError> {
        let rule = TableRule {
            schema,
            mappings,
            fields,
        };
        rule.validate()?;
        Ok(rule)
    }

    fn validate(&self) -> Result<(), RuleError> {
        // Distinct variables; no redefinition of the root.
        let mut defined: BTreeSet<&str> = BTreeSet::new();
        for m in &self.mappings {
            if m.var == ROOT_VAR || !defined.insert(m.var.as_str()) {
                return Err(RuleError::DuplicateVariable(m.var.clone()));
            }
        }
        // Parents must exist.
        for m in &self.mappings {
            if m.parent != ROOT_VAR && !defined.contains(m.parent.as_str()) {
                return Err(RuleError::UnknownParent {
                    var: m.var.clone(),
                    parent: m.parent.clone(),
                });
            }
        }
        // Connectivity to the root (this also rejects cycles).
        let parent_of: BTreeMap<&str, &str> = self
            .mappings
            .iter()
            .map(|m| (m.var.as_str(), m.parent.as_str()))
            .collect();
        for m in &self.mappings {
            let mut cur = m.var.as_str();
            let mut steps = 0usize;
            while cur != ROOT_VAR {
                match parent_of.get(cur) {
                    Some(&p) => cur = p,
                    None => return Err(RuleError::NotConnectedToRoot(m.var.clone())),
                }
                steps += 1;
                if steps > self.mappings.len() {
                    return Err(RuleError::NotConnectedToRoot(m.var.clone()));
                }
            }
        }
        // Simple paths except from the root variable.
        for m in &self.mappings {
            if m.parent != ROOT_VAR && m.path.has_wildcard() {
                return Err(RuleError::NonSimplePath {
                    var: m.var.clone(),
                    path: m.path.to_string(),
                });
            }
        }
        // Field rules: known leaf variables, one per field, distinct vars.
        let internal: BTreeSet<&str> = self.mappings.iter().map(|m| m.parent.as_str()).collect();
        let mut seen_fields: BTreeSet<&str> = BTreeSet::new();
        let mut seen_vars: BTreeSet<&str> = BTreeSet::new();
        for fr in &self.fields {
            if !seen_fields.insert(fr.field.as_str()) {
                return Err(RuleError::DuplicateField(fr.field.clone()));
            }
            let known = fr.var == ROOT_VAR || defined.contains(fr.var.as_str());
            if !known {
                return Err(RuleError::UnknownFieldVariable {
                    field: fr.field.clone(),
                    var: fr.var.clone(),
                });
            }
            if internal.contains(fr.var.as_str()) {
                return Err(RuleError::FieldOnInternalVariable {
                    field: fr.field.clone(),
                    var: fr.var.clone(),
                });
            }
            if !seen_vars.insert(fr.var.as_str()) {
                return Err(RuleError::SharedFieldVariable {
                    var: fr.var.clone(),
                });
            }
        }
        // Every schema attribute must be populated.
        for attr in self.schema.attributes() {
            if !seen_fields.contains(attr.as_str()) {
                return Err(RuleError::MissingField(attr.clone()));
            }
        }
        Ok(())
    }

    /// The relation schema this rule populates.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// The variable mappings, in declaration order.
    pub fn mappings(&self) -> &[VarMapping] {
        &self.mappings
    }

    /// The field rules, in schema order.
    pub fn field_rules(&self) -> &[FieldRule] {
        &self.fields
    }

    /// The field rule for a given field name.
    pub fn field_rule(&self, field: &str) -> Option<&FieldRule> {
        self.fields.iter().find(|fr| fr.field == field)
    }

    /// The variable that populates `field` (i.e. `field := value(var)`).
    pub fn field_var(&self, field: &str) -> Option<&str> {
        self.field_rule(field).map(|fr| fr.var.as_str())
    }

    /// The mapping defining `var`, if it is not the root.
    pub fn mapping_of(&self, var: &str) -> Option<&VarMapping> {
        self.mappings.iter().find(|m| m.var == var)
    }

    /// The table tree of this rule (Fig. 3/4 of the paper).
    pub fn table_tree(&self) -> TableTree {
        TableTree::from_rule(self)
    }

    /// Shreds a document into an instance of this rule's relation,
    /// following the paper's Section 2 semantics (one tuple per complete
    /// binding, nulls for missing branches).
    ///
    /// This is the one-shot string walk; repeated or large-document
    /// shredding should [`TableRule::prepare`] a [`crate::ShredPlan`] and
    /// shred over a [`xmlprop_xmltree::DocIndex`].
    pub fn shred(&self, doc: &xmlprop_xmltree::Document) -> xmlprop_reldb::Relation {
        crate::shred::shred_rule(self, doc)
    }

    /// Compiles this rule into a [`crate::ShredPlan`] against a shared
    /// label universe (see the plan docs for the preparation contract).
    pub fn prepare(&self, universe: &mut xmlprop_xmlpath::LabelUniverse) -> crate::ShredPlan {
        crate::ShredPlan::new(self, universe)
    }
}

impl fmt::Display for TableRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "rule {} {{", self.schema)?;
        for m in &self.mappings {
            // Print `xr//book` for wildcard-initial paths, `xa/@isbn` for
            // simple ones and plain `y` for the (identity) empty path.
            let path = m.path.to_string();
            if m.path.is_epsilon() {
                writeln!(f, "    {} := {};", m.var, m.parent)?;
            } else if path.starts_with("//") {
                writeln!(f, "    {} := {}{};", m.var, m.parent, path)?;
            } else {
                writeln!(f, "    {} := {}/{};", m.var, m.parent, path)?;
            }
        }
        for fr in &self.fields {
            writeln!(f, "    {} := value({});", fr.field, fr.var)?;
        }
        write!(f, "}}")
    }
}

/// A transformation: one table rule per relation of the target schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Transformation {
    rules: Vec<TableRule>,
}

impl Transformation {
    /// Creates a transformation from rules.
    pub fn new(rules: Vec<TableRule>) -> Self {
        Transformation { rules }
    }

    /// Parses a transformation from the textual syntax (see
    /// [`parse_single_rule`](crate::parse_single_rule) for the grammar).
    pub fn parse(text: &str) -> Result<Self, crate::ParseRuleError> {
        crate::parse::parse_transformation(text)
    }

    /// The table rules.
    pub fn rules(&self) -> &[TableRule] {
        &self.rules
    }

    /// Looks a rule up by relation name.
    pub fn rule(&self, relation: &str) -> Option<&TableRule> {
        self.rules.iter().find(|r| r.schema().name() == relation)
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: TableRule) {
        self.rules.push(rule);
    }

    /// The number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the transformation has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The total size of the transformation (variables plus path atoms plus
    /// fields over all rules) — the measure `|σ|` of the complexity
    /// statements.
    pub fn size(&self) -> usize {
        self.rules
            .iter()
            .map(|r| {
                r.mappings().iter().map(|m| 1 + m.path.len()).sum::<usize>() + r.field_rules().len()
            })
            .sum()
    }

    /// Shreds a document into a database with one instance per rule.
    ///
    /// One-shot string walk; see [`Transformation::prepare`] for the
    /// prepared counterpart.
    pub fn shred(&self, doc: &xmlprop_xmltree::Document) -> xmlprop_reldb::Database {
        let mut db = xmlprop_reldb::Database::new();
        for rule in &self.rules {
            db.insert(rule.shred(doc));
        }
        db
    }

    /// Compiles every rule into a [`crate::TransformationPlan`] against a
    /// shared label universe.
    pub fn prepare(
        &self,
        universe: &mut xmlprop_xmlpath::LabelUniverse,
    ) -> crate::TransformationPlan {
        crate::TransformationPlan::new(self, universe)
    }
}

impl fmt::Display for Transformation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping(var: &str, parent: &str, path: &str) -> VarMapping {
        VarMapping {
            var: var.into(),
            parent: parent.into(),
            path: path.parse().unwrap(),
        }
    }

    fn field(field: &str, var: &str) -> FieldRule {
        FieldRule {
            field: field.into(),
            var: var.into(),
        }
    }

    fn book_rule() -> Result<TableRule, RuleError> {
        TableRule::new(
            RelationSchema::new("book", ["isbn", "title"]),
            vec![
                mapping("xa", ROOT_VAR, "//book"),
                mapping("x1", "xa", "@isbn"),
                mapping("x2", "xa", "title"),
            ],
            vec![field("isbn", "x1"), field("title", "x2")],
        )
    }

    #[test]
    fn valid_rule_is_accepted() {
        let rule = book_rule().unwrap();
        assert_eq!(rule.schema().name(), "book");
        assert_eq!(rule.field_var("isbn"), Some("x1"));
        assert_eq!(rule.mapping_of("xa").unwrap().parent, ROOT_VAR);
        assert!(rule.mapping_of("xr").is_none());
        let display = rule.to_string();
        assert!(display.contains("xa := xr//book"), "{display}");
        assert!(display.contains("x1 := xa/@isbn"), "{display}");
        assert!(display.contains("isbn := value(x1)"), "{display}");
    }

    #[test]
    fn duplicate_variable_rejected() {
        let err = TableRule::new(
            RelationSchema::new("r", ["a"]),
            vec![mapping("x", ROOT_VAR, "a"), mapping("x", ROOT_VAR, "b")],
            vec![field("a", "x")],
        )
        .unwrap_err();
        assert_eq!(err, RuleError::DuplicateVariable("x".into()));
    }

    #[test]
    fn unknown_parent_rejected() {
        let err = TableRule::new(
            RelationSchema::new("r", ["a"]),
            vec![mapping("x", "ghost", "a")],
            vec![field("a", "x")],
        )
        .unwrap_err();
        assert!(matches!(err, RuleError::UnknownParent { .. }));
    }

    #[test]
    fn non_simple_path_from_non_root_rejected() {
        let err = TableRule::new(
            RelationSchema::new("r", ["a"]),
            vec![mapping("y", ROOT_VAR, "//x"), mapping("x", "y", "//deep")],
            vec![field("a", "x")],
        )
        .unwrap_err();
        assert!(matches!(err, RuleError::NonSimplePath { .. }));
    }

    #[test]
    fn field_on_internal_variable_rejected() {
        let err = TableRule::new(
            RelationSchema::new("r", ["a"]),
            vec![mapping("y", ROOT_VAR, "//x"), mapping("x", "y", "child")],
            vec![field("a", "y")],
        )
        .unwrap_err();
        assert!(matches!(err, RuleError::FieldOnInternalVariable { .. }));
    }

    #[test]
    fn missing_and_duplicate_fields_rejected() {
        let err = TableRule::new(
            RelationSchema::new("r", ["a", "b"]),
            vec![mapping("x", ROOT_VAR, "//x"), mapping("y", ROOT_VAR, "//y")],
            vec![field("a", "x")],
        )
        .unwrap_err();
        assert_eq!(err, RuleError::MissingField("b".into()));

        let err = TableRule::new(
            RelationSchema::new("r", ["a"]),
            vec![mapping("x", ROOT_VAR, "//x"), mapping("y", ROOT_VAR, "//y")],
            vec![field("a", "x"), field("a", "y")],
        )
        .unwrap_err();
        assert_eq!(err, RuleError::DuplicateField("a".into()));
    }

    #[test]
    fn shared_field_variable_rejected() {
        let err = TableRule::new(
            RelationSchema::new("r", ["a", "b"]),
            vec![mapping("x", ROOT_VAR, "//x")],
            vec![field("a", "x"), field("b", "x")],
        )
        .unwrap_err();
        assert!(matches!(err, RuleError::SharedFieldVariable { .. }));
    }

    #[test]
    fn unknown_field_variable_rejected() {
        let err = TableRule::new(
            RelationSchema::new("r", ["a"]),
            vec![mapping("x", ROOT_VAR, "//x")],
            vec![field("a", "nope")],
        )
        .unwrap_err();
        assert!(matches!(err, RuleError::UnknownFieldVariable { .. }));
    }

    #[test]
    fn transformation_accessors() {
        let rule = book_rule().unwrap();
        let mut t = Transformation::new(vec![rule.clone()]);
        assert_eq!(t.len(), 1);
        assert!(t.rule("book").is_some());
        assert!(t.rule("missing").is_none());
        assert!(t.size() > 0);
        t.add_rule(rule);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn error_messages_are_informative() {
        let err = RuleError::NonSimplePath {
            var: "z".into(),
            path: "//a".into(),
        };
        assert!(err.to_string().contains("non-simple path"));
        let err = RuleError::MissingField("f".into());
        assert!(err.to_string().contains("no field rule"));
    }
}
