//! Shredding: evaluating a table rule over a document (Section 2, semantics).
//!
//! This is the **string baseline**: variables are resolved through cloned
//! `BTreeMap` bindings and paths through the string evaluator.  It is what
//! [`TableRule::shred`] runs for one-shot calls, the oracle the shred-plan
//! property tests pin the compiled engine against, and the facade side of
//! the `shred` bench.  Anything that shreds repeatedly — or shreds large
//! documents — should prepare a [`crate::ShredPlan`] instead.

use crate::rule::TableRule;
use crate::tree::TableTree;
use std::collections::BTreeMap;
use xmlprop_reldb::{Relation, Tuple, Value};
use xmlprop_xmltree::{Document, NodeId};

/// A partial assignment of variables to document nodes.  `None` models the
/// paper's null case: the variable's path reached no node (and every
/// descendant variable is then null as well).
type Binding = BTreeMap<String, Option<NodeId>>;

/// Evaluates a table rule over a document, producing one relation instance.
///
/// Semantics (Section 2 of the paper, Example 2.5):
///
/// * the root variable is bound to the document root;
/// * a variable `x := y/P` ranges over `y[[P]]`; if that set is empty the
///   variable (and its descendants) are bound to null;
/// * when several nodes are reached, an implicit Cartesian product covers
///   them all;
/// * the field `f := value(x)` of each output tuple holds the `value()`
///   serialization of `x`'s node, or SQL null when `x` is unbound.
pub fn shred_rule(rule: &TableRule, doc: &Document) -> Relation {
    let tree = rule.table_tree();
    let mut bindings: Vec<Binding> = vec![{
        let mut b = Binding::new();
        b.insert(tree.root().to_string(), Some(doc.root()));
        b
    }];

    // Variables in parent-before-child order, skipping the root.
    for var in tree.variables().iter().skip(1) {
        let parent = tree.parent(var).expect("non-root variable has a parent");
        let path = tree
            .edge_path(var)
            .expect("non-root variable has an edge path");
        let mut next: Vec<Binding> = Vec::with_capacity(bindings.len());
        for binding in &bindings {
            match binding.get(parent).copied().flatten() {
                None => {
                    // Parent unbound: the child is null too.
                    let mut b = binding.clone();
                    b.insert(var.clone(), None);
                    next.push(b);
                }
                Some(parent_node) => {
                    let nodes = path.evaluate(doc, parent_node);
                    if nodes.is_empty() {
                        let mut b = binding.clone();
                        b.insert(var.clone(), None);
                        next.push(b);
                    } else {
                        for node in nodes {
                            let mut b = binding.clone();
                            b.insert(var.clone(), Some(node));
                            next.push(b);
                        }
                    }
                }
            }
        }
        bindings = next;
    }

    let mut relation = Relation::new(rule.schema().clone());
    for binding in bindings {
        let values: Vec<Value> = rule
            .schema()
            .attributes()
            .iter()
            .map(|field| {
                let var = rule
                    .field_var(field)
                    .expect("validated rule covers every field");
                match binding.get(var).copied().flatten() {
                    Some(node) => Value::text(field_value(doc, node)),
                    None => Value::Null,
                }
            })
            .collect();
        relation.insert(Tuple::new(values));
    }
    relation
}

/// The string stored in a relational field for a bound node.
///
/// Attributes, text nodes and text-only elements contribute their text (this
/// is what every printed instance in the paper shows, e.g. `Fundamentals`
/// for a `name` element in Example 2.5); elements with attribute or element
/// children contribute the full pre-order `value()` serialization, as in the
/// paper's `value(11)` illustration.
pub(crate) fn field_value(doc: &Document, node: NodeId) -> String {
    use xmlprop_xmltree::NodeKind;
    match doc.kind(node) {
        NodeKind::Attribute | NodeKind::Text => doc.value(node),
        NodeKind::Element => {
            let only_text = doc.children(node).all(|c| doc.kind(c).is_text());
            if only_text {
                doc.string_value(node)
            } else {
                doc.value(node)
            }
        }
    }
}

/// Counts how many tuples shredding would produce, without materializing
/// them (used by tests to check the Cartesian-product semantics cheaply).
pub fn count_bindings(tree: &TableTree, doc: &Document) -> usize {
    fn rec(tree: &TableTree, doc: &Document, var: &str, node: Option<NodeId>) -> usize {
        let mut total = 1usize;
        for child in tree.children(var) {
            let path = tree.edge_path(child).expect("child has an edge");
            let nodes = match node {
                Some(n) => path.evaluate(doc, n),
                None => Vec::new(),
            };
            let child_count: usize = if nodes.is_empty() {
                rec(tree, doc, child, None)
            } else {
                nodes
                    .into_iter()
                    .map(|n| rec(tree, doc, child, Some(n)))
                    .sum()
            };
            total *= child_count.max(1);
        }
        total
    }
    rec(tree, doc, tree.root(), Some(doc.root()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample;
    use xmlprop_reldb::Fd;
    use xmlprop_xmltree::sample::fig1;
    use xmlprop_xmltree::ElementBuilder;

    #[test]
    fn example_2_5_section_instance() {
        // The interpretation of Rule(section) over the Fig. 1 tree yields the
        // two fully populated tuples printed in Example 2.5; chapters with no
        // sections additionally produce null-padded tuples (the paper's
        // "value(x) is defined to be null" amendment to the semantics).
        let t = sample::example_2_4_transformation();
        let doc = fig1();
        let rel = t.rule("section").unwrap().shred(&doc);
        assert_eq!(rel.schema().attributes(), &["inChapt", "number", "name"]);
        let complete: Vec<Vec<String>> = rel
            .rows()
            .iter()
            .filter(|r| !r.has_null())
            .map(|r| r.values().iter().map(|v| v.to_string()).collect())
            .collect();
        assert_eq!(
            complete,
            vec![
                vec!["1".to_string(), "1".to_string(), "Fundamentals".to_string()],
                vec!["1".to_string(), "2".to_string(), "Attributes".to_string()],
            ]
        );
        // Book 123's two chapters have no sections: two null-padded rows.
        let padded = rel.rows().iter().filter(|r| r.has_null()).count();
        assert_eq!(padded, 2);
        assert_eq!(rel.len(), 4);
    }

    #[test]
    fn chapter_instance_matches_fig_2b_shape() {
        let t = sample::example_2_4_transformation();
        let doc = fig1();
        let rel = t.rule("chapter").unwrap().shred(&doc);
        assert_eq!(rel.len(), 3);
        let fd = Fd::parse("inBook, number -> name").unwrap();
        assert!(rel.satisfies_fd_paper(&fd));
        // bookTitle-based key would fail, but that needs the title — checked
        // at the integration level with a dedicated transformation.
    }

    #[test]
    fn book_instance_has_two_rows() {
        let t = sample::example_2_4_transformation();
        let doc = fig1();
        let rel = t.rule("book").unwrap().shred(&doc);
        // Book 123 has one author; book 234 has none (nulls) — still one row
        // each because empty author branches produce nulls, not row loss.
        assert_eq!(rel.len(), 2);
        let by_isbn: Vec<(String, bool)> = rel
            .rows()
            .iter()
            .map(|r| {
                (
                    rel.value(r, "isbn").to_string(),
                    rel.value(r, "contact").is_null(),
                )
            })
            .collect();
        assert!(by_isbn.contains(&("123".to_string(), false)));
        assert!(by_isbn.contains(&("234".to_string(), true)));
    }

    #[test]
    fn whole_transformation_shreds_to_a_database() {
        let t = sample::example_2_4_transformation();
        let doc = fig1();
        let db = t.shred(&doc);
        assert_eq!(db.len(), 3);
        assert_eq!(db.get("book").unwrap().len(), 2);
        assert_eq!(db.get("chapter").unwrap().len(), 3);
        // Two real sections plus two null-padded rows for sectionless chapters.
        assert_eq!(db.get("section").unwrap().len(), 4);
        assert_eq!(
            db.get("section")
                .unwrap()
                .rows()
                .iter()
                .filter(|r| !r.has_null())
                .count(),
            2
        );
    }

    #[test]
    fn cartesian_product_semantics() {
        // A document where a book has 2 authors and 3 chapters: a rule with
        // fields from both branches produces 2 × 3 = 6 tuples.
        let doc = ElementBuilder::new("r")
            .child(
                ElementBuilder::new("book")
                    .attr("isbn", "1")
                    .child(ElementBuilder::new("author").text_child("name", "A"))
                    .child(ElementBuilder::new("author").text_child("name", "B"))
                    .children(
                        (1..=3)
                            .map(|i| ElementBuilder::new("chapter").attr("number", i.to_string())),
                    ),
            )
            .build();
        let t = crate::Transformation::parse(
            "rule pairs(isbn, author, chapter) {
                xb := xr//book;
                xi := xb/@isbn;
                xa := xb/author;
                xn := xa/name;
                xc := xb/chapter;
                xm := xc/@number;
                isbn := value(xi);
                author := value(xn);
                chapter := value(xm);
            }",
        )
        .unwrap();
        let rel = t.rule("pairs").unwrap().shred(&doc);
        assert_eq!(rel.len(), 6);
        let tree = t.rule("pairs").unwrap().table_tree();
        assert_eq!(count_bindings(&tree, &doc), 6);
    }

    #[test]
    fn missing_branches_become_null_not_lost_rows() {
        // The universal relation of Example 3.1 over Fig. 1: book 234 has no
        // author and no sections under chapter... but chapter 1 of book 234
        // has sections; chapters of book 123 have none, so secNum/secName are
        // null there while chapNum/chapName are populated.
        let u = sample::example_3_1_universal();
        let doc = fig1();
        let rel = u.shred(&doc);
        // Expected bindings: book 123 (1 author) × chapters {1, 10} × no
        // sections → 2 rows; book 234 (no author) × chapter 1 × sections
        // {1, 2} → 2 rows.
        assert_eq!(rel.len(), 4);
        let null_sections = rel
            .rows()
            .iter()
            .filter(|r| rel.value(r, "secNum").is_null())
            .count();
        assert_eq!(null_sections, 2);
        let null_authors = rel
            .rows()
            .iter()
            .filter(|r| rel.value(r, "bookAuthor").is_null())
            .count();
        assert_eq!(null_authors, 2);
    }

    #[test]
    fn empty_document_yields_single_all_null_row() {
        let t = sample::example_2_4_transformation();
        let doc = xmlprop_xmltree::Document::new("r");
        let rel = t.rule("book").unwrap().shred(&doc);
        assert_eq!(rel.len(), 1);
        assert!(rel.rows()[0].values().iter().all(Value::is_null));
    }

    #[test]
    fn values_use_preorder_serialization_for_elements() {
        // A field bound to an element variable stores the pre-order value()
        // string, as in Example 2.5's value(11) illustration.
        let doc = fig1();
        let t = crate::Transformation::parse(
            "rule chap(c) {
                xb := xr//book;
                xc := xb/chapter;
                c := value(xc);
            }",
        )
        .unwrap();
        let rel = t.rule("chap").unwrap().shred(&doc);
        let first = rel.value(&rel.rows()[0], "c").to_string();
        assert_eq!(first, "(@number:1, name:(S:Introduction))");
    }
}
