//! Table trees — the tree representation of a table rule (Fig. 3/4).

use crate::rule::{TableRule, ROOT_VAR};
use std::collections::BTreeMap;
use xmlprop_xmlpath::PathExpr;

/// The table tree of a rule: each variable is a node, the root variable is
/// the root, and the edge into a variable is labelled with its mapping path.
///
/// All the propagation algorithms work on this view: they walk ancestor
/// chains, compute `path(y, x)` between variables, and measure the tree
/// depth (the experimental parameter of Fig. 7(b)).
#[derive(Debug, Clone)]
pub struct TableTree {
    /// Parent of each non-root variable.
    parent: BTreeMap<String, String>,
    /// Edge label (path) of each non-root variable.
    edge: BTreeMap<String, PathExpr>,
    /// Children of each variable, in declaration order.
    children: BTreeMap<String, Vec<String>>,
    /// All variables, root first, in a topological (parent-before-child)
    /// order.
    order: Vec<String>,
}

impl TableTree {
    /// Builds the table tree of a (validated) rule.
    pub fn from_rule(rule: &TableRule) -> Self {
        let mut parent = BTreeMap::new();
        let mut edge = BTreeMap::new();
        let mut children: BTreeMap<String, Vec<String>> = BTreeMap::new();
        children.entry(ROOT_VAR.to_string()).or_default();
        for m in rule.mappings() {
            parent.insert(m.var.clone(), m.parent.clone());
            edge.insert(m.var.clone(), m.path.clone());
            children
                .entry(m.parent.clone())
                .or_default()
                .push(m.var.clone());
            children.entry(m.var.clone()).or_default();
        }
        // Topological order: repeatedly emit variables whose parent has been
        // emitted.  Validation guarantees connectivity, so this terminates.
        let mut order = vec![ROOT_VAR.to_string()];
        let mut emitted: std::collections::BTreeSet<&str> = std::iter::once(ROOT_VAR).collect();
        let mut remaining: Vec<&str> = rule.mappings().iter().map(|m| m.var.as_str()).collect();
        while !remaining.is_empty() {
            let mut next_round = Vec::with_capacity(remaining.len());
            for var in remaining {
                if emitted.contains(parent[var].as_str()) {
                    emitted.insert(var);
                    order.push(var.to_string());
                } else {
                    next_round.push(var);
                }
            }
            remaining = next_round;
        }
        TableTree {
            parent,
            edge,
            children,
            order,
        }
    }

    /// The root variable name (`xr`).
    pub fn root(&self) -> &str {
        ROOT_VAR
    }

    /// All variables, root first, parents before children.
    pub fn variables(&self) -> &[String] {
        &self.order
    }

    /// The number of variables including the root.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if the tree consists only of the root variable.
    pub fn is_empty(&self) -> bool {
        self.order.len() <= 1
    }

    /// The parent of a variable (`None` for the root).
    pub fn parent(&self, var: &str) -> Option<&str> {
        self.parent.get(var).map(String::as_str)
    }

    /// The path labelling the edge into `var` (`None` for the root).
    pub fn edge_path(&self, var: &str) -> Option<&PathExpr> {
        self.edge.get(var)
    }

    /// The children of a variable.
    pub fn children(&self, var: &str) -> &[String] {
        self.children.get(var).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True if `var` is a leaf (no children) — only leaves may carry field
    /// rules.
    pub fn is_leaf(&self, var: &str) -> bool {
        self.children(var).is_empty()
    }

    /// True if the tree knows this variable.
    pub fn contains(&self, var: &str) -> bool {
        var == ROOT_VAR || self.parent.contains_key(var)
    }

    /// The ancestors of `var` from the root down to `var` itself
    /// (inclusive) — the list Algorithm `propagation` walks top-down.
    pub fn ancestors_from_root(&self, var: &str) -> Vec<String> {
        let mut chain = vec![var.to_string()];
        let mut cur = var;
        while let Some(p) = self.parent(cur) {
            chain.push(p.to_string());
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// True if `anc` is an ancestor of `var` (or equal to it).
    pub fn is_ancestor_or_self(&self, anc: &str, var: &str) -> bool {
        let mut cur = var;
        loop {
            if cur == anc {
                return true;
            }
            match self.parent(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// All descendants of `var`, not including `var` itself.
    pub fn descendants(&self, var: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut stack: Vec<&str> = self.children(var).iter().map(String::as_str).collect();
        while let Some(v) = stack.pop() {
            out.push(v.to_string());
            stack.extend(self.children(v).iter().map(String::as_str));
        }
        out
    }

    /// `path(from, to)`: the concatenation of the edge paths on the unique
    /// tree path from ancestor `from` down to `to`.  Returns `None` if
    /// `from` is not an ancestor-or-self of `to`.
    ///
    /// Example from the paper (Fig. 3(b)): `path(xr, z1)` is
    /// `//book/chapter/@number`.
    pub fn path_between(&self, from: &str, to: &str) -> Option<PathExpr> {
        let mut segments: Vec<&PathExpr> = Vec::new();
        let mut cur = to;
        loop {
            if cur == from {
                let mut out = PathExpr::epsilon();
                for seg in segments.iter().rev() {
                    out = out.concat(seg);
                }
                return Some(out);
            }
            let p = self.parent(cur)?;
            segments.push(self.edge_path(cur).expect("non-root variable has an edge"));
            cur = p;
        }
    }

    /// `path(xr, var)`: the position of `var` relative to the document root.
    pub fn path_from_root(&self, var: &str) -> PathExpr {
        self.path_between(ROOT_VAR, var)
            .expect("every variable is connected to the root")
    }

    /// The depth of a variable (the root has depth 0).
    pub fn depth_of(&self, var: &str) -> usize {
        self.ancestors_from_root(var).len() - 1
    }

    /// The depth of the tree: the maximum variable depth.  This is the
    /// experimental parameter "depth of the table tree" of Fig. 7(b).
    pub fn depth(&self) -> usize {
        self.order
            .iter()
            .map(|v| self.depth_of(v))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::sample;

    #[test]
    fn section_rule_tree_matches_fig_3b() {
        let t = sample::example_2_4_transformation();
        let rule = t.rule("section").unwrap();
        let tree = rule.table_tree();
        assert_eq!(tree.root(), "xr");
        assert_eq!(tree.parent("zc"), Some("xr"));
        assert_eq!(tree.parent("zs"), Some("zc"));
        assert_eq!(tree.parent("z2"), Some("zs"));
        assert_eq!(tree.edge_path("zc").unwrap().to_string(), "//book/chapter");
        assert_eq!(
            tree.path_from_root("z1").to_string(),
            "//book/chapter/@number"
        );
        assert_eq!(
            tree.path_from_root("z3").to_string(),
            "//book/chapter/section/name"
        );
        assert_eq!(tree.path_between("zs", "z3").unwrap().to_string(), "name");
        assert_eq!(tree.path_between("z3", "zs"), None);
        assert_eq!(tree.depth_of("z3"), 3);
        assert_eq!(tree.depth(), 3);
    }

    #[test]
    fn ancestors_and_descendants() {
        let t = sample::example_2_4_transformation();
        let tree = t.rule("book").unwrap().table_tree();
        assert_eq!(tree.ancestors_from_root("x4"), vec!["xr", "xa", "xd", "x4"]);
        assert!(tree.is_ancestor_or_self("xa", "x4"));
        assert!(tree.is_ancestor_or_self("x4", "x4"));
        assert!(!tree.is_ancestor_or_self("x4", "xa"));
        let mut desc = tree.descendants("xd");
        desc.sort();
        assert_eq!(desc, vec!["x3", "x4"]);
        assert!(tree.is_leaf("x4"));
        assert!(!tree.is_leaf("xa"));
        assert!(tree.contains("xa"));
        assert!(!tree.contains("nope"));
    }

    #[test]
    fn variables_are_in_topological_order() {
        let t = sample::example_3_1_universal();
        let tree = t.table_tree();
        let pos: std::collections::HashMap<&str, usize> = tree
            .variables()
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), i))
            .collect();
        for v in tree.variables() {
            if let Some(p) = tree.parent(v) {
                assert!(pos[p] < pos[v.as_str()], "{p} must come before {v}");
            }
        }
        assert_eq!(tree.len(), tree.variables().len());
        assert!(!tree.is_empty());
    }
}
