//! A concise textual syntax for transformations.
//!
//! ```text
//! rule chapter(inBook, number, name) {
//!     yb := xr//book;
//!     y1 := yb/@isbn;
//!     yc := yb/chapter;
//!     y2 := yc/@number;
//!     y3 := yc/name;
//!     inBook := value(y1);
//!     number := value(y2);
//!     name   := value(y3);
//! }
//! ```
//!
//! * `x := y/P` is a variable mapping (`y//P` and plain `x := y` — the empty
//!   path — are accepted too);
//! * `f := value(x)` is a field rule;
//! * `xr` denotes the root variable and must not be defined;
//! * `#` starts a line comment.

use crate::rule::{FieldRule, TableRule, Transformation, VarMapping};
use std::fmt;
use xmlprop_reldb::RelationSchema;

/// Error from parsing the textual transformation syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRuleError {
    /// Description of the problem.
    pub message: String,
}

impl ParseRuleError {
    fn new(message: impl Into<String>) -> Self {
        ParseRuleError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseRuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid transformation: {}", self.message)
    }
}

impl std::error::Error for ParseRuleError {}

/// Parses a whole transformation (a sequence of `rule NAME(fields) { … }`
/// blocks).
pub fn parse_transformation(text: &str) -> Result<Transformation, ParseRuleError> {
    // Strip comments.
    let cleaned: String = text
        .lines()
        .map(|l| match l.find('#') {
            Some(i) => &l[..i],
            None => l,
        })
        .collect::<Vec<_>>()
        .join("\n");

    let mut rules = Vec::new();
    let mut rest = cleaned.trim();
    while !rest.is_empty() {
        let Some(stripped) = rest.strip_prefix("rule") else {
            return Err(ParseRuleError::new(format!(
                "expected `rule`, found `{}`",
                rest.chars().take(20).collect::<String>()
            )));
        };
        let open_brace = stripped
            .find('{')
            .ok_or_else(|| ParseRuleError::new("missing `{` after rule header"))?;
        let header = stripped[..open_brace].trim();
        let close_brace = stripped[open_brace..]
            .find('}')
            .map(|i| i + open_brace)
            .ok_or_else(|| ParseRuleError::new("missing `}` closing rule body"))?;
        let body = &stripped[open_brace + 1..close_brace];
        rules.push(parse_rule(header, body)?);
        rest = stripped[close_brace + 1..].trim();
    }
    if rules.is_empty() {
        return Err(ParseRuleError::new("no rules found"));
    }
    Ok(Transformation::new(rules))
}

/// Parses the header `name(f1, f2, …)` and the body statements of one rule.
fn parse_rule(header: &str, body: &str) -> Result<TableRule, ParseRuleError> {
    let open = header
        .find('(')
        .ok_or_else(|| ParseRuleError::new(format!("rule header `{header}` is missing `(`")))?;
    let close = header
        .rfind(')')
        .ok_or_else(|| ParseRuleError::new(format!("rule header `{header}` is missing `)`")))?;
    let name = header[..open].trim();
    if name.is_empty() {
        return Err(ParseRuleError::new("rule has no name"));
    }
    let fields: Vec<String> = header[open + 1..close]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if fields.is_empty() {
        return Err(ParseRuleError::new(format!(
            "rule `{name}` declares no fields"
        )));
    }

    let mut mappings = Vec::new();
    let mut field_rules = Vec::new();
    for stmt in body.split(';') {
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        let (lhs, rhs) = stmt
            .split_once(":=")
            .ok_or_else(|| ParseRuleError::new(format!("statement `{stmt}` is missing `:=`")))?;
        let lhs = lhs.trim();
        let rhs = rhs.trim();
        if let Some(var_expr) = rhs.strip_prefix("value(") {
            let var = var_expr
                .strip_suffix(')')
                .ok_or_else(|| ParseRuleError::new(format!("unterminated value() in `{stmt}`")))?
                .trim();
            field_rules.push(FieldRule {
                field: lhs.to_string(),
                var: var.to_string(),
            });
        } else {
            let (parent, path) = split_parent_path(rhs);
            let path = path
                .parse()
                .map_err(|e| ParseRuleError::new(format!("in `{stmt}`: {e}")))?;
            mappings.push(VarMapping {
                var: lhs.to_string(),
                parent: parent.to_string(),
                path,
            });
        }
    }

    // Put field rules into schema order for a stable display.
    field_rules.sort_by_key(|fr| {
        fields
            .iter()
            .position(|f| f == &fr.field)
            .unwrap_or(usize::MAX)
    });

    TableRule::new(RelationSchema::new(name, fields), mappings, field_rules)
        .map_err(|e| ParseRuleError::new(format!("rule `{name}`: {e}")))
}

/// Splits `"yb/@isbn"` into `("yb", "@isbn")`, `"xr//book"` into
/// `("xr", "//book")` and a bare `"y"` into `("y", "")` (the empty path).
fn split_parent_path(rhs: &str) -> (&str, &str) {
    match rhs.find('/') {
        Some(i) => (&rhs[..i], &rhs[i..]),
        None => (rhs, ""),
    }
}

/// Parses a single rule given separately from its header, mostly useful in
/// tests and doc examples.
pub fn parse_single_rule(text: &str) -> Result<TableRule, ParseRuleError> {
    let t = parse_transformation(text)?;
    match t.rules().len() {
        1 => Ok(t.rules()[0].clone()),
        n => Err(ParseRuleError::new(format!(
            "expected exactly one rule, found {n}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::ROOT_VAR as R;

    #[test]
    fn parses_the_chapter_rule() {
        let rule = parse_single_rule(
            "rule chapter(inBook, number, name) {
                yb := xr//book;
                y1 := yb/@isbn;
                yc := yb/chapter;
                y2 := yc/@number;
                y3 := yc/name;
                inBook := value(y1);
                number := value(y2);
                name := value(y3);
            }",
        )
        .unwrap();
        assert_eq!(rule.schema().name(), "chapter");
        assert_eq!(rule.schema().arity(), 3);
        assert_eq!(rule.mappings().len(), 5);
        assert_eq!(rule.mapping_of("yb").unwrap().parent, R);
        assert_eq!(rule.mapping_of("yb").unwrap().path.to_string(), "//book");
        assert_eq!(rule.field_var("name"), Some("y3"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let t = parse_transformation(
            "# the book rule only\nrule book(isbn) {\n  xb := xr//book; # bind books\n\n  xi := xb/@isbn;\n  isbn := value(xi);\n}",
        )
        .unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn multiple_rules_parse_in_order() {
        let t = parse_transformation(
            "rule a(x) { v := xr//a; w := v/@id; x := value(w); }
             rule b(y) { v := xr//b; w := v/@id; y := value(w); }",
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rules()[0].schema().name(), "a");
        assert_eq!(t.rules()[1].schema().name(), "b");
    }

    #[test]
    fn empty_path_mapping_is_the_identity() {
        let rule =
            parse_single_rule("rule r(v) { a := xr//item; b := a; c := b/@id; v := value(c); }")
                .unwrap();
        assert!(rule.mapping_of("b").unwrap().path.is_epsilon());
    }

    #[test]
    fn error_cases() {
        assert!(parse_transformation("").is_err());
        assert!(parse_transformation("not a rule").is_err());
        assert!(parse_transformation("rule r(a) { broken statement }").is_err());
        assert!(parse_transformation("rule r(a) { x := xr//a }").is_err()); // missing field rule
        assert!(parse_transformation("rule r() { x := xr//a; }").is_err()); // no fields
        assert!(parse_transformation("rule r(a) { a := value(unknown); }").is_err());
        // Definition 2.2 violations surface as parse errors with context.
        let err = parse_transformation("rule r(a) { x := xr//p; y := x//deep; a := value(y); }")
            .unwrap_err();
        assert!(err.to_string().contains("non-simple path"), "{err}");
    }

    #[test]
    fn display_of_parsed_rule_reparses_to_the_same_rule() {
        let original = parse_single_rule(
            "rule section(inChapt, number, name) {
                zc := xr//book/chapter;
                z1 := zc/@number;
                zs := zc/section;
                z2 := zs/@number;
                z3 := zs/name;
                inChapt := value(z1);
                number := value(z2);
                name := value(z3);
            }",
        )
        .unwrap();
        let text = original.to_string();
        let reparsed = parse_single_rule(&text).unwrap();
        assert_eq!(original, reparsed);
    }
}
