//! Fluent builder for constructing documents in code.

use crate::{Document, NodeId};

/// A fluent builder for an element subtree.
///
/// `ElementBuilder` makes hand-written documents (which tests and examples
/// need a lot of) readable:
///
/// ```
/// use xmlprop_xmltree::ElementBuilder;
///
/// let doc = ElementBuilder::new("db")
///     .child(
///         ElementBuilder::new("book")
///             .attr("isbn", "123")
///             .child(ElementBuilder::new("title").text("XML")),
///     )
///     .build();
/// assert_eq!(doc.value(doc.root()), "(book:(@isbn:123, title:(S:XML)))");
/// ```
#[derive(Debug, Clone)]
pub struct ElementBuilder {
    label: String,
    attrs: Vec<(String, String)>,
    children: Vec<Child>,
}

#[derive(Debug, Clone)]
enum Child {
    Element(ElementBuilder),
    Text(String),
}

impl ElementBuilder {
    /// Starts building an element with the given tag name.
    pub fn new(label: impl Into<String>) -> Self {
        ElementBuilder {
            label: label.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute to the element.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Adds an element child.
    pub fn child(mut self, child: ElementBuilder) -> Self {
        self.children.push(Child::Element(child));
        self
    }

    /// Adds several element children at once.
    pub fn children(mut self, children: impl IntoIterator<Item = ElementBuilder>) -> Self {
        for c in children {
            self.children.push(Child::Element(c));
        }
        self
    }

    /// Adds a text child.
    pub fn text(mut self, value: impl Into<String>) -> Self {
        self.children.push(Child::Text(value.into()));
        self
    }

    /// Convenience: adds an element child that only contains text, e.g.
    /// `.text_child("title", "XML")` for `<title>XML</title>`.
    pub fn text_child(self, label: impl Into<String>, value: impl Into<String>) -> Self {
        self.child(ElementBuilder::new(label).text(value))
    }

    /// Finishes the builder, producing a document whose root is this element.
    pub fn build(self) -> Document {
        let mut doc = Document::new(self.label.clone());
        let root = doc.root();
        self.fill(&mut doc, root);
        doc
    }

    /// Appends this subtree under `parent` in an existing document and returns
    /// the id of the newly created element.
    pub fn attach(self, doc: &mut Document, parent: NodeId) -> NodeId {
        let id = doc.add_element(parent, self.label.clone());
        self.fill(doc, id);
        id
    }

    fn fill(self, doc: &mut Document, id: NodeId) {
        for (name, value) in self.attrs {
            doc.add_attribute(id, name, value);
        }
        for child in self.children {
            match child {
                Child::Element(b) => {
                    b.attach(doc, id);
                }
                Child::Text(t) => {
                    doc.add_text(id, t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_structure() {
        let doc = ElementBuilder::new("db")
            .child(
                ElementBuilder::new("book")
                    .attr("isbn", "123")
                    .text_child("title", "XML")
                    .child(
                        ElementBuilder::new("chapter")
                            .attr("number", "1")
                            .text_child("name", "Introduction"),
                    ),
            )
            .build();
        let root = doc.root();
        assert_eq!(doc.label(root), "db");
        let book = doc.element_children(root).next().unwrap();
        assert_eq!(doc.attribute(book, "isbn"), Some("123"));
        let chapter = doc.children_labelled(book, "chapter").next().unwrap();
        assert_eq!(doc.attribute(chapter, "number"), Some("1"));
        let name = doc.children_labelled(chapter, "name").next().unwrap();
        assert_eq!(doc.string_value(name), "Introduction");
    }

    #[test]
    fn attach_into_existing_document() {
        let mut doc = Document::new("db");
        let root = doc.root();
        let first = ElementBuilder::new("book")
            .attr("isbn", "1")
            .attach(&mut doc, root);
        let second = ElementBuilder::new("book")
            .attr("isbn", "2")
            .attach(&mut doc, root);
        assert_ne!(first, second);
        assert_eq!(doc.element_children(root).count(), 2);
    }

    #[test]
    fn children_helper_adds_all() {
        let doc = ElementBuilder::new("r")
            .children((0..3).map(|i| ElementBuilder::new("item").attr("id", i.to_string())))
            .build();
        assert_eq!(doc.element_children(doc.root()).count(), 3);
    }
}
