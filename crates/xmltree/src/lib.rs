//! XML tree data model for the `xmlprop` workspace.
//!
//! This crate implements the XML data model used by the paper
//! *"Propagating XML Constraints to Relations"* (Davidson, Fan, Hara, Qin,
//! ICDE 2003).  A document is an ordered, node-labelled tree (Fig. 1 of the
//! paper) with three kinds of nodes:
//!
//! * **element** nodes, labelled with a tag name (`book`, `chapter`, ...);
//! * **attribute** nodes, labelled `@name` and carrying a text value;
//! * **text** nodes carrying character data.
//!
//! Node identity matters: XML keys are defined in terms of node identifiers,
//! not values, so the tree is stored in an arena and nodes are addressed by
//! [`NodeId`].
//!
//! The crate also provides:
//!
//! * a small builder API ([`ElementBuilder`]) for constructing documents in
//!   code (used pervasively by tests and examples);
//! * a non-validating XML **parser** ([`parse`] / [`Document::parse_str`]) and
//!   **serializer** — written from scratch because the paper ignores DTDs and
//!   schema languages entirely, so no external, DTD-aware machinery is needed;
//! * the [`Document::value`] function: the pre-order traversal serialization
//!   of a subtree that the paper's transformation language uses to populate
//!   relational fields (Example 2.5);
//! * the **compiled document engine** substrate: [`LabelUniverse`] (the
//!   string ↔ [`LabelId`] interning table shared with the compiled path/key
//!   layers) and [`DocIndex`] (per-node label ids, DFS document-order
//!   numbering with contiguous subtree ranges, label → nodes postings and
//!   interned text values, all built in one DFS pass);
//! * the **streaming front end**: [`StreamParser`] pulls
//!   [`StreamEvent`]s (start/attribute/text/end, with optional read-only
//!   [`LabelId`] resolution) off the same tokenizer the DOM parser uses,
//!   retaining only `O(depth)` state — the DOM [`parse`] is itself a driver
//!   over this stream, so both paths share one error table;
//! * the **delta interface** ([`Delta`] / [`Document::apply`] /
//!   [`AppliedDelta`]): first-class subtree insert/remove and text edits,
//!   with [`DocIndex::apply_delta`] patching a prepared index in place
//!   (renumbering only the affected range) instead of rebuilding it;
//! * the running example of the paper (Fig. 1) as [`sample::fig1`].
//!
//! # Example
//!
//! ```
//! use xmlprop_xmltree::{Document, NodeKind};
//!
//! let doc = Document::parse_str(
//!     r#"<db><book isbn="123"><title>XML</title></book></db>"#,
//! ).unwrap();
//! let root = doc.root();
//! assert_eq!(doc.label(root), "db");
//! let book = doc.children(root).next().unwrap();
//! assert_eq!(doc.label(book), "book");
//! let isbn = doc.attribute_node(book, "isbn").unwrap();
//! assert!(matches!(doc.kind(isbn), NodeKind::Attribute));
//! assert_eq!(doc.text_value(isbn), Some("123"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod delta;
mod document;
mod error;
mod index;
mod labels;
mod node;
mod parse;
pub mod sample;
mod serialize;
mod stream;

pub use builder::ElementBuilder;
pub use delta::{AppliedDelta, Delta, DeltaError, Fragment};
pub use document::Document;
pub use error::ParseError;
pub use index::{ChildPositions, DocIndex};
pub use labels::{LabelId, LabelUniverse};
pub use node::{NodeId, NodeKind};
pub use parse::parse;
pub use serialize::{to_pretty_xml, to_xml};
pub use stream::{StreamEvent, StreamParser, MAX_DEPTH};
