//! A small, non-validating XML parser.
//!
//! Supports the subset of XML needed to load realistic data-exchange
//! documents: elements, attributes, character data, CDATA sections,
//! comments, processing instructions, the XML declaration, the five
//! predefined entities and numeric character references.  DOCTYPE
//! declarations are recognised and skipped (the paper explicitly treats key
//! constraints as orthogonal to DTDs, so no DTD content model is needed).
//!
//! The tokenizer lives in [`crate::stream`]: this module is a thin driver
//! that folds the event stream into a [`Document`], so the DOM and
//! streaming paths accept the same inputs and report identical
//! [`ParseError`]s.

use crate::error::ParseError;
use crate::stream::{StreamEvent, StreamParser};
use crate::{Document, NodeId};

/// Parses an XML document from text.
pub fn parse(input: &str) -> Result<Document, ParseError> {
    let mut parser = StreamParser::new(input);
    let mut doc: Option<Document> = None;
    let mut open: Vec<NodeId> = Vec::new();
    while let Some(event) = parser.next_event()? {
        match event {
            StreamEvent::StartElement { name, .. } => {
                let id = match doc.as_mut() {
                    None => {
                        doc = Some(Document::new(name));
                        doc.as_ref().expect("just created").root()
                    }
                    Some(d) => {
                        let parent = *open.last().expect("nested element has an open parent");
                        d.add_element(parent, name)
                    }
                };
                open.push(id);
            }
            StreamEvent::Attribute { name, value, .. } => {
                let owner = *open.last().expect("attribute follows an open element");
                doc.as_mut()
                    .expect("document exists")
                    .add_attribute(owner, name, value);
            }
            StreamEvent::Text { value } => {
                let parent = *open.last().expect("text occurs inside an open element");
                doc.as_mut()
                    .expect("document exists")
                    .add_text(parent, value);
            }
            StreamEvent::EndElement => {
                open.pop().expect("end event closes an open element");
            }
        }
    }
    Ok(doc.expect("a completed stream contains a root element"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeKind;

    #[test]
    fn parses_simple_document() {
        let doc = parse(r#"<db><book isbn="123"><title>XML</title></book></db>"#).unwrap();
        let root = doc.root();
        assert_eq!(doc.label(root), "db");
        let book = doc.element_children(root).next().unwrap();
        assert_eq!(doc.attribute(book, "isbn"), Some("123"));
        let title = doc.children_labelled(book, "title").next().unwrap();
        assert_eq!(doc.string_value(title), "XML");
    }

    #[test]
    fn parses_self_closing_and_single_quotes() {
        let doc = parse(r#"<r><item id='7'/><item id="8"/></r>"#).unwrap();
        let items: Vec<_> = doc.children_labelled(doc.root(), "item").collect();
        assert_eq!(items.len(), 2);
        assert_eq!(doc.attribute(items[0], "id"), Some("7"));
        assert_eq!(doc.attribute(items[1], "id"), Some("8"));
    }

    #[test]
    fn skips_prolog_comments_and_doctype() {
        let doc = parse(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE db [<!ELEMENT db (book*)>]>\n<!-- a comment -->\n<db><book/></db>\n<!-- trailing -->",
        )
        .unwrap();
        assert_eq!(doc.label(doc.root()), "db");
        assert_eq!(doc.element_children(doc.root()).count(), 1);
    }

    #[test]
    fn decodes_entities_and_char_refs() {
        let doc = parse(r#"<r a="&lt;x&gt;">A &amp; B &#65;&#x42;</r>"#).unwrap();
        assert_eq!(doc.attribute(doc.root(), "a"), Some("<x>"));
        assert_eq!(doc.string_value(doc.root()), "A & B AB");
    }

    #[test]
    fn parses_cdata() {
        let doc = parse("<r><![CDATA[<not> & parsed]]></r>").unwrap();
        assert_eq!(doc.string_value(doc.root()), "<not> & parsed");
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let doc = parse("<r>\n  <a/>\n  <b/>\n</r>").unwrap();
        let kinds: Vec<NodeKind> = doc.children(doc.root()).map(|c| doc.kind(c)).collect();
        assert_eq!(kinds, vec![NodeKind::Element, NodeKind::Element]);
    }

    #[test]
    fn mixed_content_is_preserved() {
        let doc = parse("<p>hello <b>world</b> again</p>").unwrap();
        assert_eq!(doc.children(doc.root()).count(), 3);
        assert_eq!(doc.string_value(doc.root()), "hello world again");
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(
            err.message.contains("mismatched end tag"),
            "{}",
            err.message
        );
    }

    #[test]
    fn rejects_garbage_after_root() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn rejects_unterminated_constructs() {
        assert!(parse("<a").is_err());
        assert!(parse("<a attr=>").is_err());
        assert!(parse("<!-- never closed").is_err());
        assert!(parse("<a>&unknown;</a>").is_err());
    }

    #[test]
    fn rejects_empty_and_prolog_only_input() {
        for input in ["", "   \n\t ", "<?xml version=\"1.0\"?>", "<!-- only -->"] {
            let err = parse(input).unwrap_err();
            assert!(
                err.message.contains("expected root element"),
                "{input:?}: {}",
                err.message
            );
        }
    }

    #[test]
    fn rejects_unterminated_cdata_pi_and_doctype() {
        assert!(parse("<r><![CDATA[never closed</r>").is_err());
        assert!(parse("<?xml never closed").is_err());
        assert!(parse("<!DOCTYPE db [<!ELEMENT db (x)>").is_err());
        assert!(parse("<r><?pi never closed</r>").is_err());
    }

    #[test]
    fn rejects_malformed_attributes() {
        // Unquoted, missing `=`, unterminated value, bad entity in value.
        assert!(parse("<r a=1/>").is_err());
        assert!(parse("<r a \"1\"/>").is_err());
        assert!(parse("<r a=\"1/>").is_err());
        assert!(parse("<r a=\"&nope;\"/>").is_err());
        assert!(parse("<r a=\"&lt\"/>").is_err(), "entity missing semicolon");
    }

    #[test]
    fn rejects_bad_character_references() {
        assert!(parse("<r>&#xZZ;</r>").is_err());
        assert!(parse("<r>&#abc;</r>").is_err());
        // 0xD800 is a surrogate, not a valid code point.
        assert!(parse("<r>&#xD800;</r>").is_err());
        assert!(parse("<r>&#4294967296;</r>").is_err());
    }

    #[test]
    fn rejects_missing_or_broken_names() {
        assert!(parse("< r/>").is_err(), "space before the name");
        assert!(parse("<r></>").is_err(), "empty closing name");
        assert!(parse("<>x</>").is_err(), "empty opening name");
    }

    #[test]
    fn rejects_truncated_documents() {
        for input in ["<a><b></b>", "<a", "<a x", "<a></a", "<a></"] {
            assert!(parse(input).is_err(), "{input:?} should fail");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        use crate::stream::MAX_DEPTH;
        let deep = "<a>".repeat(1_000_000);
        let err = parse(&deep).unwrap_err();
        assert!(
            err.message
                .contains(&format!("maximum depth of {MAX_DEPTH}")),
            "{}",
            err.message
        );
        assert_eq!(err.offset, MAX_DEPTH * 3);
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("<db>\n  <book><title></book>\n</db>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
    }

    #[test]
    fn roundtrip_through_display() {
        let original =
            parse(r#"<db><book isbn="1&amp;2"><title>X &lt; Y</title></book></db>"#).unwrap();
        let text = original.to_string();
        let reparsed = parse(&text).unwrap();
        assert_eq!(
            original.value(original.root()),
            reparsed.value(reparsed.root())
        );
    }
}
