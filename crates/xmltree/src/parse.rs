//! A small, non-validating XML parser.
//!
//! Supports the subset of XML needed to load realistic data-exchange
//! documents: elements, attributes, character data, CDATA sections,
//! comments, processing instructions, the XML declaration, the five
//! predefined entities and numeric character references.  DOCTYPE
//! declarations are recognised and skipped (the paper explicitly treats key
//! constraints as orthogonal to DTDs, so no DTD content model is needed).

use crate::error::ParseError;
use crate::{Document, NodeId};

/// Parses an XML document from text.
pub fn parse(input: &str) -> Result<Document, ParseError> {
    Parser::new(input).parse_document()
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.pos, self.input, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            self.bump(s.len());
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn parse_document(&mut self) -> Result<Document, ParseError> {
        self.skip_prolog()?;
        self.skip_whitespace();
        if self.peek() != Some(b'<') {
            return Err(self.err("expected root element"));
        }
        let mut doc = None;
        self.parse_element(&mut doc, None)?;
        let doc = doc.expect("parse_element populates the document for the root");
        // Trailing misc (comments / whitespace / PIs).
        loop {
            self.skip_whitespace();
            if self.pos >= self.bytes.len() {
                break;
            }
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<?") {
                self.skip_pi()?;
            } else {
                return Err(self.err("unexpected content after root element"));
            }
        }
        Ok(doc)
    }

    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_pi(&mut self) -> Result<(), ParseError> {
        self.expect("<?")?;
        match self.input[self.pos..].find("?>") {
            Some(end) => {
                self.bump(end + 2);
                Ok(())
            }
            None => Err(self.err("unterminated processing instruction")),
        }
    }

    fn skip_comment(&mut self) -> Result<(), ParseError> {
        self.expect("<!--")?;
        match self.input[self.pos..].find("-->") {
            Some(end) => {
                self.bump(end + 3);
                Ok(())
            }
            None => Err(self.err("unterminated comment")),
        }
    }

    /// Skips a DOCTYPE declaration, including an internal subset if present.
    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        self.expect("<!DOCTYPE")?;
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek() {
                Some(b'<') => {
                    depth += 1;
                    self.bump(1);
                }
                Some(b'>') => {
                    depth -= 1;
                    self.bump(1);
                }
                Some(_) => self.bump(1),
                None => return Err(self.err("unterminated DOCTYPE declaration")),
            }
        }
        Ok(())
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let c = b as char;
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    /// Parses an element.  On the first call `doc` is `None` and a new
    /// document rooted at this element is created; recursive calls attach to
    /// `parent`.
    fn parse_element(
        &mut self,
        doc: &mut Option<Document>,
        parent: Option<NodeId>,
    ) -> Result<NodeId, ParseError> {
        self.expect("<")?;
        let name = self.parse_name()?;
        let id = match (doc.as_mut(), parent) {
            (None, _) => {
                *doc = Some(Document::new(name));
                doc.as_ref().expect("just created").root()
            }
            (Some(d), Some(p)) => d.add_element(p, name),
            (Some(_), None) => unreachable!("nested element without a parent"),
        };

        // Attributes.
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(id);
                }
                Some(b'>') => {
                    self.bump(1);
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_whitespace();
                    self.expect("=")?;
                    self.skip_whitespace();
                    let value = self.parse_attr_value()?;
                    doc.as_mut()
                        .expect("document exists")
                        .add_attribute(id, attr_name, value);
                }
                None => return Err(self.err("unexpected end of input inside element tag")),
            }
        }

        // Content.
        loop {
            if self.starts_with("</") {
                self.expect("</")?;
                let close = self.parse_name()?;
                let open = doc.as_ref().expect("document exists").label(id).to_string();
                if close != open {
                    return Err(self.err(format!(
                        "mismatched end tag: expected `</{open}>`, found `</{close}>`"
                    )));
                }
                self.skip_whitespace();
                self.expect(">")?;
                return Ok(id);
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<![CDATA[") {
                let text = self.parse_cdata()?;
                if !text.is_empty() {
                    doc.as_mut().expect("document exists").add_text(id, text);
                }
            } else if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.peek() == Some(b'<') {
                self.parse_element(doc, Some(id))?;
            } else if self.peek().is_some() {
                let text = self.parse_char_data()?;
                // Whitespace-only runs between tags are formatting, not data;
                // anything else is kept verbatim so mixed content survives.
                if !text.trim().is_empty() {
                    doc.as_mut().expect("document exists").add_text(id, text);
                }
            } else {
                return Err(self.err("unexpected end of input inside element content"));
            }
        }
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.bump(1);
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let raw = &self.input[start..self.pos];
                self.bump(1);
                return decode_entities(raw).map_err(|m| ParseError::new(start, self.input, m));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated attribute value"))
    }

    fn parse_char_data(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            self.pos += 1;
        }
        decode_entities(&self.input[start..self.pos])
            .map_err(|m| ParseError::new(start, self.input, m))
    }

    fn parse_cdata(&mut self) -> Result<String, ParseError> {
        self.expect("<![CDATA[")?;
        match self.input[self.pos..].find("]]>") {
            Some(end) => {
                let text = self.input[self.pos..self.pos + end].to_string();
                self.bump(end + 3);
                Ok(text)
            }
            None => Err(self.err("unterminated CDATA section")),
        }
    }
}

/// Decodes the predefined entities and numeric character references.
fn decode_entities(raw: &str) -> Result<String, String> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest
            .find(';')
            .ok_or_else(|| "unterminated entity reference".to_string())?;
        let entity = &rest[1..semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| format!("invalid character reference `&{entity};`"))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| format!("invalid code point in `&{entity};`"))?,
                );
            }
            _ if entity.starts_with('#') => {
                let code = entity[1..]
                    .parse::<u32>()
                    .map_err(|_| format!("invalid character reference `&{entity};`"))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| format!("invalid code point in `&{entity};`"))?,
                );
            }
            _ => return Err(format!("unknown entity `&{entity};`")),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeKind;

    #[test]
    fn parses_simple_document() {
        let doc = parse(r#"<db><book isbn="123"><title>XML</title></book></db>"#).unwrap();
        let root = doc.root();
        assert_eq!(doc.label(root), "db");
        let book = doc.element_children(root).next().unwrap();
        assert_eq!(doc.attribute(book, "isbn"), Some("123"));
        let title = doc.children_labelled(book, "title").next().unwrap();
        assert_eq!(doc.string_value(title), "XML");
    }

    #[test]
    fn parses_self_closing_and_single_quotes() {
        let doc = parse(r#"<r><item id='7'/><item id="8"/></r>"#).unwrap();
        let items: Vec<_> = doc.children_labelled(doc.root(), "item").collect();
        assert_eq!(items.len(), 2);
        assert_eq!(doc.attribute(items[0], "id"), Some("7"));
        assert_eq!(doc.attribute(items[1], "id"), Some("8"));
    }

    #[test]
    fn skips_prolog_comments_and_doctype() {
        let doc = parse(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE db [<!ELEMENT db (book*)>]>\n<!-- a comment -->\n<db><book/></db>\n<!-- trailing -->",
        )
        .unwrap();
        assert_eq!(doc.label(doc.root()), "db");
        assert_eq!(doc.element_children(doc.root()).count(), 1);
    }

    #[test]
    fn decodes_entities_and_char_refs() {
        let doc = parse(r#"<r a="&lt;x&gt;">A &amp; B &#65;&#x42;</r>"#).unwrap();
        assert_eq!(doc.attribute(doc.root(), "a"), Some("<x>"));
        assert_eq!(doc.string_value(doc.root()), "A & B AB");
    }

    #[test]
    fn parses_cdata() {
        let doc = parse("<r><![CDATA[<not> & parsed]]></r>").unwrap();
        assert_eq!(doc.string_value(doc.root()), "<not> & parsed");
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let doc = parse("<r>\n  <a/>\n  <b/>\n</r>").unwrap();
        let kinds: Vec<NodeKind> = doc.children(doc.root()).map(|c| doc.kind(c)).collect();
        assert_eq!(kinds, vec![NodeKind::Element, NodeKind::Element]);
    }

    #[test]
    fn mixed_content_is_preserved() {
        let doc = parse("<p>hello <b>world</b> again</p>").unwrap();
        assert_eq!(doc.children(doc.root()).count(), 3);
        assert_eq!(doc.string_value(doc.root()), "hello world again");
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(
            err.message.contains("mismatched end tag"),
            "{}",
            err.message
        );
    }

    #[test]
    fn rejects_garbage_after_root() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn rejects_unterminated_constructs() {
        assert!(parse("<a").is_err());
        assert!(parse("<a attr=>").is_err());
        assert!(parse("<!-- never closed").is_err());
        assert!(parse("<a>&unknown;</a>").is_err());
    }

    #[test]
    fn rejects_empty_and_prolog_only_input() {
        for input in ["", "   \n\t ", "<?xml version=\"1.0\"?>", "<!-- only -->"] {
            let err = parse(input).unwrap_err();
            assert!(
                err.message.contains("expected root element"),
                "{input:?}: {}",
                err.message
            );
        }
    }

    #[test]
    fn rejects_unterminated_cdata_pi_and_doctype() {
        assert!(parse("<r><![CDATA[never closed</r>").is_err());
        assert!(parse("<?xml never closed").is_err());
        assert!(parse("<!DOCTYPE db [<!ELEMENT db (x)>").is_err());
        assert!(parse("<r><?pi never closed</r>").is_err());
    }

    #[test]
    fn rejects_malformed_attributes() {
        // Unquoted, missing `=`, unterminated value, bad entity in value.
        assert!(parse("<r a=1/>").is_err());
        assert!(parse("<r a \"1\"/>").is_err());
        assert!(parse("<r a=\"1/>").is_err());
        assert!(parse("<r a=\"&nope;\"/>").is_err());
        assert!(parse("<r a=\"&lt\"/>").is_err(), "entity missing semicolon");
    }

    #[test]
    fn rejects_bad_character_references() {
        assert!(parse("<r>&#xZZ;</r>").is_err());
        assert!(parse("<r>&#abc;</r>").is_err());
        // 0xD800 is a surrogate, not a valid code point.
        assert!(parse("<r>&#xD800;</r>").is_err());
        assert!(parse("<r>&#4294967296;</r>").is_err());
    }

    #[test]
    fn rejects_missing_or_broken_names() {
        assert!(parse("< r/>").is_err(), "space before the name");
        assert!(parse("<r></>").is_err(), "empty closing name");
        assert!(parse("<>x</>").is_err(), "empty opening name");
    }

    #[test]
    fn rejects_truncated_documents() {
        for input in ["<a><b></b>", "<a", "<a x", "<a></a", "<a></"] {
            assert!(parse(input).is_err(), "{input:?} should fail");
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("<db>\n  <book><title></book>\n</db>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
    }

    #[test]
    fn roundtrip_through_display() {
        let original =
            parse(r#"<db><book isbn="1&amp;2"><title>X &lt; Y</title></book></db>"#).unwrap();
        let text = original.to_string();
        let reparsed = parse(&text).unwrap();
        assert_eq!(
            original.value(original.root()),
            reparsed.value(reparsed.root())
        );
    }
}
