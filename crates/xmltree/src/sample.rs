//! Sample documents used throughout the workspace.
//!
//! [`fig1`] reproduces the running example of the paper (Fig. 1): a document
//! with two `book` elements that share the title "XML" but differ on
//! `@isbn`, the configuration that makes `(bookTitle, chapterNum)` a bad
//! relational key and `(isbn, chapterNum)` a good one (Example 1.1).

use crate::{Document, ElementBuilder};

/// The XML tree of Fig. 1 of the paper.
///
/// ```text
/// r
/// ├── book  @isbn=123
/// │   ├── title  "XML"
/// │   ├── author ── name "Tim Bray", contact "tbray@example.org"
/// │   ├── chapter @number=1  ── name "Introduction"
/// │   └── chapter @number=10 ── name "Conclusion"
/// └── book  @isbn=234
///     ├── title  "XML"
///     └── chapter @number=1 ── name "Getting Acquainted"
///         ├── section @number=1 ── name "Fundamentals"
///         └── section @number=2 ── name "Attributes"
/// ```
///
/// The document satisfies all seven sample keys K1–K7 of Example 2.1.
pub fn fig1() -> Document {
    ElementBuilder::new("r")
        .child(
            ElementBuilder::new("book")
                .attr("isbn", "123")
                .child(
                    ElementBuilder::new("author")
                        .text_child("name", "Tim Bray")
                        .text_child("contact", "tbray@example.org"),
                )
                .text_child("title", "XML")
                .child(
                    ElementBuilder::new("chapter")
                        .attr("number", "1")
                        .text_child("name", "Introduction"),
                )
                .child(
                    ElementBuilder::new("chapter")
                        .attr("number", "10")
                        .text_child("name", "Conclusion"),
                ),
        )
        .child(
            ElementBuilder::new("book")
                .attr("isbn", "234")
                .text_child("title", "XML")
                .child(
                    ElementBuilder::new("chapter")
                        .attr("number", "1")
                        .text_child("name", "Getting Acquainted")
                        .child(
                            ElementBuilder::new("section")
                                .attr("number", "1")
                                .text_child("name", "Fundamentals"),
                        )
                        .child(
                            ElementBuilder::new("section")
                                .attr("number", "2")
                                .text_child("name", "Attributes"),
                        ),
                ),
        )
        .build()
}

/// A variant of [`fig1`] that violates key `K1` (two distinct books carry the
/// same `@isbn`).  Useful for exercising violation reporting.
pub fn fig1_duplicate_isbn() -> Document {
    let mut doc = fig1();
    let root = doc.root();
    ElementBuilder::new("book")
        .attr("isbn", "123")
        .text_child("title", "Duplicate")
        .attach(&mut doc, root);
    doc
}

/// A larger, regular library document: `books` books, each with `chapters`
/// chapters, each with `sections` sections.  ISBNs, chapter numbers and
/// section numbers are generated so that all keys K1–K7 hold.  Used by
/// integration tests and examples that need more than the six tuples of the
/// Fig. 1 data.
pub fn library(books: usize, chapters: usize, sections: usize) -> Document {
    let mut root = ElementBuilder::new("r");
    for b in 0..books {
        let mut book = ElementBuilder::new("book")
            .attr("isbn", format!("isbn-{b}"))
            .text_child("title", format!("Book {b}"))
            .child(
                ElementBuilder::new("author")
                    .text_child("name", format!("Author {b}"))
                    .text_child("contact", format!("author{b}@example.org")),
            );
        for c in 0..chapters {
            let mut chapter = ElementBuilder::new("chapter")
                .attr("number", (c + 1).to_string())
                .text_child("name", format!("Chapter {c} of book {b}"));
            for s in 0..sections {
                chapter = chapter.child(
                    ElementBuilder::new("section")
                        .attr("number", (s + 1).to_string())
                        .text_child("name", format!("Section {b}.{c}.{s}")),
                );
            }
            book = book.child(chapter);
        }
        root = root.child(book);
    }
    root.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape() {
        let doc = fig1();
        let root = doc.root();
        assert_eq!(doc.label(root), "r");
        let books: Vec<_> = doc.children_labelled(root, "book").collect();
        assert_eq!(books.len(), 2);
        assert_eq!(doc.attribute(books[0], "isbn"), Some("123"));
        assert_eq!(doc.attribute(books[1], "isbn"), Some("234"));
        // Both books titled "XML" — the crux of Example 1.1.
        for &b in &books {
            let title = doc.children_labelled(b, "title").next().unwrap();
            assert_eq!(doc.string_value(title), "XML");
        }
        let chapters1: Vec<_> = doc.children_labelled(books[0], "chapter").collect();
        assert_eq!(chapters1.len(), 2);
        let chapters2: Vec<_> = doc.children_labelled(books[1], "chapter").collect();
        assert_eq!(chapters2.len(), 1);
        let sections: Vec<_> = doc.children_labelled(chapters2[0], "section").collect();
        assert_eq!(sections.len(), 2);
    }

    #[test]
    fn duplicate_isbn_adds_conflicting_book() {
        let doc = fig1_duplicate_isbn();
        let isbns: Vec<_> = doc
            .children_labelled(doc.root(), "book")
            .filter_map(|b| doc.attribute(b, "isbn").map(str::to_string))
            .collect();
        assert_eq!(isbns.iter().filter(|s| s.as_str() == "123").count(), 2);
    }

    #[test]
    fn library_counts() {
        let doc = library(3, 2, 4);
        let books: Vec<_> = doc.children_labelled(doc.root(), "book").collect();
        assert_eq!(books.len(), 3);
        for &b in &books {
            let chapters: Vec<_> = doc.children_labelled(b, "chapter").collect();
            assert_eq!(chapters.len(), 2);
            for &c in &chapters {
                assert_eq!(doc.children_labelled(c, "section").count(), 4);
            }
        }
    }
}
