//! Event-driven streaming XML front end.
//!
//! [`StreamParser`] is a pull parser over the same tokenizer and error table
//! as the DOM [`parse`](crate::parse) function — in fact the DOM parser *is*
//! a driver over this event stream, so both paths reject exactly the same
//! inputs with exactly the same [`ParseError`]s.  Each call to
//! [`StreamParser::next_event`] advances the input to the next structural
//! event:
//!
//! * [`StreamEvent::StartElement`] — an open tag `<name ...`;
//! * [`StreamEvent::Attribute`] — one `name="value"` pair inside the most
//!   recently opened tag (attributes are delivered *before* any content of
//!   their element);
//! * [`StreamEvent::Text`] — decoded character data or CDATA (whitespace-only
//!   runs between tags are dropped, like the DOM parser);
//! * [`StreamEvent::EndElement`] — `</name>` or `/>` closing the innermost
//!   open element.
//!
//! When constructed with [`StreamParser::with_universe`], element and
//! attribute events carry the interned [`LabelId`] of their label (attribute
//! labels get the `@` prefix, matching [`crate::Document`]), resolved
//! read-only — labels absent from the universe yield `None` and can never
//! match a compiled query, which is exactly the DOM semantics for unknown
//! labels.
//!
//! The parser's retained state is the stack of open element name spans —
//! memory is bounded by tree depth, never by node count.

use crate::error::ParseError;
use crate::labels::{LabelId, LabelUniverse};

/// The maximum element nesting depth either parser accepts.
///
/// Every layer above the tokenizer keeps per-depth state — the parser's
/// open-name stack, the DOM builder's open-node stack, the streaming
/// shredder's frontier — and downstream consumers recurse over subtrees.
/// A pathologically nested document (`<a><a><a>…`) would otherwise trade
/// a few megabytes of input for an unbounded stack; past this depth the
/// document is rejected with a byte-offset [`ParseError`] instead.  Real
/// data-exchange documents nest a few dozen levels deep; 1024 is two
/// orders of magnitude of headroom.
pub const MAX_DEPTH: usize = 1024;

/// One structural event of the XML stream.
///
/// Element and attribute names borrow from the parsed input; text and
/// attribute values are owned because entity decoding may rewrite them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent<'a> {
    /// An element open tag.  Attributes follow as separate events.
    StartElement {
        /// The element's tag name.
        name: &'a str,
        /// The interned label, when a universe was supplied and knows it.
        label: Option<LabelId>,
    },
    /// One attribute of the most recently opened element.
    Attribute {
        /// The attribute name as written (without the `@` prefix).
        name: &'a str,
        /// The interned `@name` label, when a universe was supplied and
        /// knows it.
        label: Option<LabelId>,
        /// The decoded attribute value.
        value: String,
    },
    /// Decoded character data (or CDATA) inside the innermost open element.
    Text {
        /// The decoded text.
        value: String,
    },
    /// The innermost open element closed (`</name>` or `/>`).
    EndElement,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Before the root element: prolog, whitespace, comments, DOCTYPE.
    Prolog,
    /// Inside an open tag, before `>` or `/>`: attributes pending.
    InTag,
    /// Inside element content.
    Content,
    /// After the root element closed: trailing misc only.
    Epilog,
    /// The stream is exhausted.
    Done,
}

/// A pull parser producing [`StreamEvent`]s from XML text.
///
/// Accepts exactly the inputs the DOM [`parse`](crate::parse) accepts and
/// reports the same errors at the same positions (the DOM parser is built on
/// this type).  Retained state is `O(depth)`: the spans of the open element
/// names.
///
/// # Example
///
/// ```
/// use xmlprop_xmltree::{StreamEvent, StreamParser};
///
/// let mut parser = StreamParser::new(r#"<db><book isbn="123"/></db>"#);
/// let mut starts = 0;
/// while let Some(event) = parser.next_event().unwrap() {
///     if matches!(event, StreamEvent::StartElement { .. }) {
///         starts += 1;
///     }
/// }
/// assert_eq!(starts, 2);
/// ```
pub struct StreamParser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    state: State,
    /// Byte spans of the names of the currently open elements.
    open: Vec<(usize, usize)>,
    universe: Option<&'a LabelUniverse>,
    /// Scratch buffer for `@name` attribute-label lookups.
    attr_scratch: String,
}

impl<'a> StreamParser<'a> {
    /// Creates a parser over `input` with no label resolution.
    pub fn new(input: &'a str) -> Self {
        StreamParser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            state: State::Prolog,
            open: Vec::new(),
            universe: None,
            attr_scratch: String::new(),
        }
    }

    /// Creates a parser that resolves event labels against `universe`
    /// (read-only — unknown labels yield `None`, they are never interned).
    pub fn with_universe(input: &'a str, universe: &'a LabelUniverse) -> Self {
        let mut parser = StreamParser::new(input);
        parser.universe = Some(universe);
        parser
    }

    /// Number of currently open elements.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Current byte offset into the input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Returns the next event, `Ok(None)` once the document (plus trailing
    /// misc) is fully consumed.
    pub fn next_event(&mut self) -> Result<Option<StreamEvent<'a>>, ParseError> {
        loop {
            match self.state {
                State::Prolog => {
                    self.skip_prolog()?;
                    self.skip_whitespace();
                    if self.peek() != Some(b'<') {
                        return Err(self.err("expected root element"));
                    }
                    return self.open_tag().map(Some);
                }
                State::InTag => {
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b'/') => {
                            self.expect("/>")?;
                            return self.close_innermost().map(Some);
                        }
                        Some(b'>') => {
                            self.bump(1);
                            self.state = State::Content;
                        }
                        Some(_) => {
                            let (start, end) = self.parse_name()?;
                            self.skip_whitespace();
                            self.expect("=")?;
                            self.skip_whitespace();
                            let value = self.parse_attr_value()?;
                            let name = &self.input[start..end];
                            return Ok(Some(StreamEvent::Attribute {
                                name,
                                label: self.attribute_label(name),
                                value,
                            }));
                        }
                        None => return Err(self.err("unexpected end of input inside element tag")),
                    }
                }
                State::Content => {
                    if self.starts_with("</") {
                        self.expect("</")?;
                        let (start, end) = self.parse_name()?;
                        let close = &self.input[start..end];
                        let &(open_start, open_end) =
                            self.open.last().expect("content implies an open element");
                        let open = &self.input[open_start..open_end];
                        if close != open {
                            return Err(self.err(format!(
                                "mismatched end tag: expected `</{open}>`, found `</{close}>`"
                            )));
                        }
                        self.skip_whitespace();
                        self.expect(">")?;
                        return self.close_innermost().map(Some);
                    } else if self.starts_with("<!--") {
                        self.skip_comment()?;
                    } else if self.starts_with("<![CDATA[") {
                        let text = self.parse_cdata()?;
                        if !text.is_empty() {
                            return Ok(Some(StreamEvent::Text { value: text }));
                        }
                    } else if self.starts_with("<?") {
                        self.skip_pi()?;
                    } else if self.peek() == Some(b'<') {
                        return self.open_tag().map(Some);
                    } else if self.peek().is_some() {
                        let text = self.parse_char_data()?;
                        // Whitespace-only runs between tags are formatting,
                        // not data; anything else is kept verbatim so mixed
                        // content survives.
                        if !text.trim().is_empty() {
                            return Ok(Some(StreamEvent::Text { value: text }));
                        }
                    } else {
                        return Err(self.err("unexpected end of input inside element content"));
                    }
                }
                State::Epilog => {
                    // Trailing misc (comments / whitespace / PIs).
                    self.skip_whitespace();
                    if self.pos >= self.bytes.len() {
                        self.state = State::Done;
                        return Ok(None);
                    }
                    if self.starts_with("<!--") {
                        self.skip_comment()?;
                    } else if self.starts_with("<?") {
                        self.skip_pi()?;
                    } else {
                        return Err(self.err("unexpected content after root element"));
                    }
                }
                State::Done => return Ok(None),
            }
        }
    }

    fn open_tag(&mut self) -> Result<StreamEvent<'a>, ParseError> {
        if self.open.len() >= MAX_DEPTH {
            // Reported at the `<` of the offending open tag, before any
            // state changes — the guard fires for both parsing paths.
            return Err(self.err(format!(
                "element nesting exceeds the maximum depth of {MAX_DEPTH}"
            )));
        }
        self.expect("<")?;
        let (start, end) = self.parse_name()?;
        self.open.push((start, end));
        self.state = State::InTag;
        let name = &self.input[start..end];
        Ok(StreamEvent::StartElement {
            name,
            label: self.universe.and_then(|u| u.lookup(name)),
        })
    }

    fn close_innermost(&mut self) -> Result<StreamEvent<'a>, ParseError> {
        self.open.pop().expect("close implies an open element");
        self.state = if self.open.is_empty() {
            State::Epilog
        } else {
            State::Content
        };
        Ok(StreamEvent::EndElement)
    }

    fn attribute_label(&mut self, name: &str) -> Option<LabelId> {
        let universe = self.universe?;
        self.attr_scratch.clear();
        self.attr_scratch.push('@');
        self.attr_scratch.push_str(name);
        universe.lookup(&self.attr_scratch)
    }

    // ---- tokenizer ------------------------------------------------------
    //
    // This is the single tokenizer of the crate: the DOM parser in
    // `parse.rs` drives the event stream above, so every error message and
    // position below is shared verbatim by both paths.

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.pos, self.input, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            self.bump(s.len());
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_pi(&mut self) -> Result<(), ParseError> {
        self.expect("<?")?;
        match self.input[self.pos..].find("?>") {
            Some(end) => {
                self.bump(end + 2);
                Ok(())
            }
            None => Err(self.err("unterminated processing instruction")),
        }
    }

    fn skip_comment(&mut self) -> Result<(), ParseError> {
        self.expect("<!--")?;
        match self.input[self.pos..].find("-->") {
            Some(end) => {
                self.bump(end + 3);
                Ok(())
            }
            None => Err(self.err("unterminated comment")),
        }
    }

    /// Skips a DOCTYPE declaration, including an internal subset if present.
    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        self.expect("<!DOCTYPE")?;
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek() {
                Some(b'<') => {
                    depth += 1;
                    self.bump(1);
                }
                Some(b'>') => {
                    depth -= 1;
                    self.bump(1);
                }
                Some(_) => self.bump(1),
                None => return Err(self.err("unterminated DOCTYPE declaration")),
            }
        }
        Ok(())
    }

    /// Parses a name, returning its byte span in the input.
    fn parse_name(&mut self) -> Result<(usize, usize), ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let c = b as char;
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok((start, self.pos))
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.bump(1);
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let raw = &self.input[start..self.pos];
                self.bump(1);
                return decode_entities(raw).map_err(|m| ParseError::new(start, self.input, m));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated attribute value"))
    }

    fn parse_char_data(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            self.pos += 1;
        }
        decode_entities(&self.input[start..self.pos])
            .map_err(|m| ParseError::new(start, self.input, m))
    }

    fn parse_cdata(&mut self) -> Result<String, ParseError> {
        self.expect("<![CDATA[")?;
        match self.input[self.pos..].find("]]>") {
            Some(end) => {
                let text = self.input[self.pos..self.pos + end].to_string();
                self.bump(end + 3);
                Ok(text)
            }
            None => Err(self.err("unterminated CDATA section")),
        }
    }
}

/// Decodes the predefined entities and numeric character references.
fn decode_entities(raw: &str) -> Result<String, String> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest
            .find(';')
            .ok_or_else(|| "unterminated entity reference".to_string())?;
        let entity = &rest[1..semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| format!("invalid character reference `&{entity};`"))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| format!("invalid code point in `&{entity};`"))?,
                );
            }
            _ if entity.starts_with('#') => {
                let code = entity[1..]
                    .parse::<u32>()
                    .map_err(|_| format!("invalid character reference `&{entity};`"))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| format!("invalid code point in `&{entity};`"))?,
                );
            }
            _ => return Err(format!("unknown entity `&{entity};`")),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Result<Vec<String>, ParseError> {
        let mut parser = StreamParser::new(input);
        let mut out = Vec::new();
        while let Some(event) = parser.next_event()? {
            out.push(match event {
                StreamEvent::StartElement { name, .. } => format!("<{name}>"),
                StreamEvent::Attribute { name, value, .. } => format!("@{name}={value}"),
                StreamEvent::Text { value } => format!("text:{value}"),
                StreamEvent::EndElement => "</>".to_string(),
            });
        }
        Ok(out)
    }

    #[test]
    fn emits_events_in_document_order() {
        let got = events(r#"<db><book isbn="123"><title>XML</title></book></db>"#).unwrap();
        assert_eq!(
            got,
            vec![
                "<db>",
                "<book>",
                "@isbn=123",
                "<title>",
                "text:XML",
                "</>",
                "</>",
                "</>",
            ]
        );
    }

    #[test]
    fn self_closing_elements_emit_end_events() {
        let got = events(r#"<r><item id='7'/><item/></r>"#).unwrap();
        assert_eq!(
            got,
            vec!["<r>", "<item>", "@id=7", "</>", "<item>", "</>", "</>"]
        );
    }

    #[test]
    fn prolog_comments_and_whitespace_produce_no_events() {
        let got = events(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE r []>\n<!-- c -->\n<r>\n  <a/>\n</r>\n<!-- t -->",
        )
        .unwrap();
        assert_eq!(got, vec!["<r>", "<a>", "</>", "</>"]);
    }

    #[test]
    fn decodes_entities_in_text_and_attributes() {
        let got = events(r#"<r a="&lt;x&gt;">A &amp; B</r>"#).unwrap();
        assert_eq!(got, vec!["<r>", "@a=<x>", "text:A & B", "</>"]);
    }

    #[test]
    fn resolves_labels_against_a_universe_read_only() {
        let mut universe = LabelUniverse::default();
        let book = universe.intern("book");
        let isbn = universe.intern("@isbn");
        let before = universe.names().len();

        let mut parser =
            StreamParser::with_universe(r#"<db><book isbn="1" other="2"/></db>"#, &universe);
        let mut seen = Vec::new();
        while let Some(event) = parser.next_event().unwrap() {
            match event {
                StreamEvent::StartElement { label, .. } => seen.push(label),
                StreamEvent::Attribute { label, .. } => seen.push(label),
                _ => {}
            }
        }
        // `db` and `@other` are unknown to the universe: `None`, not interned.
        assert_eq!(seen, vec![None, Some(book), Some(isbn), None]);
        assert_eq!(universe.names().len(), before);
    }

    #[test]
    fn depth_tracks_open_elements() {
        let mut parser = StreamParser::new("<a><b><c/></b></a>");
        let mut peak = 0;
        while let Some(_event) = parser.next_event().unwrap() {
            peak = peak.max(parser.depth());
        }
        assert_eq!(peak, 3);
        assert_eq!(parser.depth(), 0);
    }

    #[test]
    fn errors_match_the_dom_parser() {
        for input in [
            "<a><b></a></b>",
            "<a/><b/>",
            "<a",
            "<a attr=>",
            "<!-- never closed",
            "<a>&unknown;</a>",
            "",
            "<r><![CDATA[never closed</r>",
            "<r a=\"1/>",
            "< r/>",
            "<a></a",
        ] {
            let dom = crate::parse(input).unwrap_err();
            let stream = events(input).unwrap_err();
            assert_eq!(dom, stream, "{input:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting_at_max_depth() {
        // ~1M open tags: without the guard this input would grow the
        // per-depth stacks (and downstream recursion) without bound.
        let deep = "<a>".repeat(1_000_000);
        let mut parser = StreamParser::new(&deep);
        let err = loop {
            match parser.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("a 1M-deep document must not parse"),
                Err(e) => break e,
            }
        };
        assert!(
            err.message
                .contains(&format!("maximum depth of {MAX_DEPTH}")),
            "{}",
            err.message
        );
        // The error points at the `<` of the first over-deep open tag.
        assert_eq!(err.offset, MAX_DEPTH * 3);

        // Exactly MAX_DEPTH levels are still fine.
        let ok = format!("{}{}", "<a>".repeat(MAX_DEPTH), "</a>".repeat(MAX_DEPTH));
        let mut parser = StreamParser::new(&ok);
        let mut peak = 0;
        while let Some(_event) = parser.next_event().unwrap() {
            peak = peak.max(parser.depth());
        }
        assert_eq!(peak, MAX_DEPTH);
    }

    #[test]
    fn next_event_after_done_returns_none() {
        let mut parser = StreamParser::new("<r/>");
        while parser.next_event().unwrap().is_some() {}
        assert!(parser.next_event().unwrap().is_none());
    }
}
