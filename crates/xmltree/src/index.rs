//! `DocIndex` — the prepared form of a document.
//!
//! Every string-walking algorithm over a [`Document`] (path evaluation
//! `n[[P]]`, table-rule shredding, key satisfaction) repeats the same three
//! pieces of work on every call: comparing labels as strings, re-discovering
//! subtree extents by stack traversal, and comparing text values as strings.
//! A `DocIndex` does that work once, in a single DFS pass:
//!
//! * every node's label is interned into a shared [`LabelUniverse`] (the
//!   same universe the compiled path/key layers use, so a compiled
//!   expression's `LabelId`s compare directly against document nodes);
//! * nodes are numbered in **document order** (DFS pre-order).  The subtree
//!   of a node is the contiguous position range `pos..subtree_end(pos)`, so
//!   *descendants-or-self* is a range scan and any position-sorted result is
//!   duplicate-free and in document order by construction;
//! * a label → positions **posting index** lists, in document order, every
//!   node carrying a given label — the fast path for `//label` steps;
//! * the text of attribute and text nodes is interned into dense value ids,
//!   so key-tuple comparisons are integer comparisons instead of
//!   `Vec<String>` orderings.
//!
//! The index borrows nothing: after construction it answers all structural
//! questions on its own (children, subtrees, labels, value equality).  Only
//! operations that need actual *strings* — serializing a field value,
//! reporting a violation — go back to the `Document`, which must be the one
//! the index was built from (node counts are asserted where cheap; handing
//! an index a different document is a logic error).

use crate::labels::{LabelId, LabelUniverse};
use crate::node::NodeKind;
use crate::{Document, NodeId};
use std::collections::HashMap;

/// Sentinel for "node carries no text value" (elements).
const NO_VALUE: u32 = u32::MAX;

/// The prepared form of a [`Document`]; see the module docs.
#[derive(Debug, Clone)]
pub struct DocIndex {
    /// Node arena index → DFS position.
    dfs_of: Vec<u32>,
    /// DFS position → node arena index.
    node_of: Vec<u32>,
    /// DFS position → exclusive end of the node's subtree range.
    end_at: Vec<u32>,
    /// DFS position → interned label.
    label_at: Vec<LabelId>,
    /// DFS position → node kind.
    kind_at: Vec<NodeKind>,
    /// DFS position → interned text value ([`NO_VALUE`] for elements).
    value_at: Vec<u32>,
    /// Label id → DFS positions of nodes carrying it, ascending.
    postings: Vec<Vec<u32>>,
    /// Number of distinct text values interned.
    distinct_values: u32,
}

impl DocIndex {
    /// Builds the index in one DFS pass, interning every label of the
    /// document into `universe`.
    ///
    /// Labels already interned (e.g. by compiling a key set or a shred plan
    /// against the same universe first) keep their ids; ids are append-only,
    /// so the relative order of preparation does not matter.
    pub fn build(doc: &Document, universe: &mut LabelUniverse) -> Self {
        let n = doc.len();
        let mut dfs_of = vec![0u32; n];
        let mut node_of = Vec::with_capacity(n);
        let mut end_at = vec![0u32; n];
        let mut label_at = Vec::with_capacity(n);
        let mut kind_at = Vec::with_capacity(n);
        let mut value_at = Vec::with_capacity(n);
        let mut postings: Vec<Vec<u32>> = vec![Vec::new(); universe.len()];
        // Text values are interned through a borrow-only map: the index
        // stores ids, never copies of the strings.
        let mut values: HashMap<&str, u32> = HashMap::new();

        enum Frame {
            Enter(NodeId),
            Exit(u32),
        }
        let mut stack = vec![Frame::Enter(doc.root())];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(node) => {
                    let pos = node_of.len() as u32;
                    node_of.push(node.index() as u32);
                    dfs_of[node.index()] = pos;
                    let label = universe.intern(doc.label(node));
                    if postings.len() <= label.index() {
                        postings.resize(label.index() + 1, Vec::new());
                    }
                    postings[label.index()].push(pos);
                    label_at.push(label);
                    kind_at.push(doc.kind(node));
                    value_at.push(match doc.text_value(node) {
                        Some(text) => {
                            let fresh = values.len() as u32;
                            *values.entry(text).or_insert(fresh)
                        }
                        None => NO_VALUE,
                    });
                    stack.push(Frame::Exit(pos));
                    for &c in doc.child_slice(node).iter().rev() {
                        stack.push(Frame::Enter(c));
                    }
                }
                Frame::Exit(pos) => end_at[pos as usize] = node_of.len() as u32,
            }
        }
        // Labels interned after the document's (by later probe compilation)
        // have empty postings; size the table for everything known now so the
        // common case is a direct index.
        postings.resize(universe.len(), Vec::new());

        DocIndex {
            dfs_of,
            node_of,
            end_at,
            label_at,
            kind_at,
            value_at,
            postings,
            distinct_values: values.len() as u32,
        }
    }

    /// The number of nodes (equals [`Document::len`] of the indexed
    /// document).
    #[inline]
    pub fn len(&self) -> usize {
        self.node_of.len()
    }

    /// True if the indexed document contains only its root element.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_of.len() <= 1
    }

    /// The DFS position (document-order rank) of a node.  The root is
    /// position 0.
    #[inline]
    pub fn position(&self, node: NodeId) -> u32 {
        self.dfs_of[node.index()]
    }

    /// The node at a DFS position.
    #[inline]
    pub fn node_at(&self, pos: u32) -> NodeId {
        NodeId::from_index(self.node_of[pos as usize] as usize)
    }

    /// The exclusive end of the subtree range of the node at `pos`: the
    /// descendants-or-self of that node are exactly the positions
    /// `pos..subtree_end(pos)`.
    #[inline]
    pub fn subtree_end(&self, pos: u32) -> u32 {
        self.end_at[pos as usize]
    }

    /// The label of the node at `pos`.
    #[inline]
    pub fn label_at(&self, pos: u32) -> LabelId {
        self.label_at[pos as usize]
    }

    /// The kind of the node at `pos`.
    #[inline]
    pub fn kind_at(&self, pos: u32) -> NodeKind {
        self.kind_at[pos as usize]
    }

    /// The interned text-value id of the node at `pos` (attribute and text
    /// nodes), or `None` for elements.  Two nodes have equal ids iff their
    /// text values are equal strings.
    #[inline]
    pub fn value_id_at(&self, pos: u32) -> Option<u32> {
        let v = self.value_at[pos as usize];
        (v != NO_VALUE).then_some(v)
    }

    /// The number of distinct text values in the document.
    pub fn distinct_values(&self) -> usize {
        self.distinct_values as usize
    }

    /// The children of the node at `pos`, as DFS positions in document
    /// order.  Derived from the subtree ranges alone: the first child sits
    /// at `pos + 1`, each next child at the previous child's subtree end.
    #[inline]
    pub fn children_at(&self, pos: u32) -> ChildPositions<'_> {
        ChildPositions {
            index: self,
            next: pos + 1,
            end: self.subtree_end(pos),
        }
    }

    /// The document-order positions of every node labelled `label`
    /// (ascending; empty for labels the document does not use).
    #[inline]
    pub fn postings(&self, label: LabelId) -> &[u32] {
        self.postings
            .get(label.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All nodes in document order (the DFS pre-order that
    /// [`Document::descendants_or_self`] of the root yields).
    pub fn nodes_in_document_order(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_of.iter().map(|&n| NodeId::from_index(n as usize))
    }
}

/// Iterator over the child positions of a node; see
/// [`DocIndex::children_at`].
#[derive(Debug, Clone)]
pub struct ChildPositions<'a> {
    index: &'a DocIndex,
    next: u32,
    end: u32,
}

impl Iterator for ChildPositions<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.next < self.end {
            let child = self.next;
            self.next = self.index.subtree_end(child);
            Some(child)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ElementBuilder;

    fn tiny() -> Document {
        ElementBuilder::new("db")
            .child(
                ElementBuilder::new("book")
                    .attr("isbn", "123")
                    .text_child("title", "XML"),
            )
            .child(ElementBuilder::new("book").attr("isbn", "234"))
            .build()
    }

    #[test]
    fn numbering_matches_document_order() {
        let doc = tiny();
        let mut u = LabelUniverse::new();
        let index = DocIndex::build(&doc, &mut u);
        assert_eq!(index.len(), doc.len());
        assert!(!index.is_empty());
        let in_order: Vec<NodeId> = index.nodes_in_document_order().collect();
        assert_eq!(in_order, doc.all_nodes());
        for (rank, &node) in in_order.iter().enumerate() {
            assert_eq!(index.position(node), rank as u32);
            assert_eq!(index.node_at(rank as u32), node);
        }
    }

    #[test]
    fn numbering_follows_document_order_not_node_ids() {
        // Mutation can append to an *earlier* parent, splitting NodeId order
        // from document order; the index must follow document order.
        let mut doc = Document::new("r");
        let a = doc.add_element(doc.root(), "a");
        let b = doc.add_element(doc.root(), "b");
        let c = doc.add_element(a, "c"); // id 3, but precedes b in doc order
        let mut u = LabelUniverse::new();
        let index = DocIndex::build(&doc, &mut u);
        assert!(index.position(c) < index.position(b));
        let in_order: Vec<NodeId> = index.nodes_in_document_order().collect();
        assert_eq!(in_order, vec![doc.root(), a, c, b]);
        assert_eq!(in_order, doc.all_nodes());
    }

    #[test]
    fn subtree_ranges_cover_descendants_or_self() {
        let doc = tiny();
        let mut u = LabelUniverse::new();
        let index = DocIndex::build(&doc, &mut u);
        for node in doc.all_nodes() {
            let pos = index.position(node);
            let range: Vec<NodeId> = (pos..index.subtree_end(pos))
                .map(|p| index.node_at(p))
                .collect();
            assert_eq!(range, doc.descendants_or_self(node), "subtree of {node}");
        }
    }

    #[test]
    fn children_iterate_in_document_order() {
        let doc = tiny();
        let mut u = LabelUniverse::new();
        let index = DocIndex::build(&doc, &mut u);
        for node in doc.all_nodes() {
            let pos = index.position(node);
            let children: Vec<NodeId> = index.children_at(pos).map(|p| index.node_at(p)).collect();
            let expected: Vec<NodeId> = doc.children(node).collect();
            assert_eq!(children, expected, "children of {node}");
        }
    }

    #[test]
    fn postings_list_label_occurrences_in_order() {
        let doc = tiny();
        let mut u = LabelUniverse::new();
        let index = DocIndex::build(&doc, &mut u);
        let book = u.lookup("book").unwrap();
        let posts = index.postings(book);
        assert_eq!(posts.len(), 2);
        assert!(posts.windows(2).all(|w| w[0] < w[1]));
        for &p in posts {
            assert_eq!(index.label_at(p), book);
            assert_eq!(doc.label(index.node_at(p)), "book");
        }
        assert!(index.postings(LabelId(9999)).is_empty());
    }

    #[test]
    fn value_ids_agree_with_string_equality() {
        let mut doc = Document::new("r");
        let a = doc.add_element(doc.root(), "a");
        doc.add_attribute(a, "x", "same");
        doc.add_attribute(a, "y", "same");
        doc.add_attribute(a, "z", "other");
        doc.add_text(a, "same");
        let mut u = LabelUniverse::new();
        let index = DocIndex::build(&doc, &mut u);
        let ids: Vec<Option<u32>> = doc
            .all_nodes()
            .into_iter()
            .map(|n| index.value_id_at(index.position(n)))
            .collect();
        // r, a are elements; @x, @y, @z, text follow in document order.
        assert_eq!(ids[0], None);
        assert_eq!(ids[1], None);
        assert_eq!(ids[2], ids[3], "equal values share an id");
        assert_ne!(ids[2], ids[4], "distinct values get distinct ids");
        assert_eq!(ids[2], ids[5], "text and attribute values share the pool");
        assert_eq!(index.distinct_values(), 2);
    }

    #[test]
    fn kinds_are_recorded() {
        let doc = tiny();
        let mut u = LabelUniverse::new();
        let index = DocIndex::build(&doc, &mut u);
        for node in doc.all_nodes() {
            assert_eq!(index.kind_at(index.position(node)), doc.kind(node));
        }
    }

    #[test]
    fn prior_interning_is_respected_and_extended() {
        let doc = tiny();
        let mut u = LabelUniverse::new();
        let early = u.intern("book");
        let probe_only = u.intern("magazine");
        let index = DocIndex::build(&doc, &mut u);
        assert_eq!(u.lookup("book"), Some(early));
        assert_eq!(index.postings(early).len(), 2);
        assert!(index.postings(probe_only).is_empty());
    }
}
