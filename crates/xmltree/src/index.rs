//! `DocIndex` — the prepared form of a document.
//!
//! Every string-walking algorithm over a [`Document`] (path evaluation
//! `n[[P]]`, table-rule shredding, key satisfaction) repeats the same three
//! pieces of work on every call: comparing labels as strings, re-discovering
//! subtree extents by stack traversal, and comparing text values as strings.
//! A `DocIndex` does that work once, in a single DFS pass:
//!
//! * every node's label is interned into a shared [`LabelUniverse`] (the
//!   same universe the compiled path/key layers use, so a compiled
//!   expression's `LabelId`s compare directly against document nodes);
//! * nodes are numbered in **document order** (DFS pre-order).  The subtree
//!   of a node is the contiguous position range `pos..subtree_end(pos)`, so
//!   *descendants-or-self* is a range scan and any position-sorted result is
//!   duplicate-free and in document order by construction;
//! * a label → positions **posting index** lists, in document order, every
//!   node carrying a given label — the fast path for `//label` steps;
//! * the text of attribute and text nodes is interned into dense value ids,
//!   so key-tuple comparisons are integer comparisons instead of
//!   `Vec<String>` orderings.
//!
//! The index borrows nothing: after construction it answers all structural
//! questions on its own (children, subtrees, labels, value equality).  Only
//! operations that need actual *strings* — serializing a field value,
//! reporting a violation — go back to the `Document`, which must be the one
//! the index was built from (node counts are asserted where cheap; handing
//! an index a different document is a logic error).

use crate::delta::AppliedDelta;
use crate::labels::{LabelId, LabelUniverse};
use crate::node::NodeKind;
use crate::{Document, NodeId};
use std::collections::HashMap;

/// Sentinel for "node carries no text value" (elements).
const NO_VALUE: u32 = u32::MAX;

/// The prepared form of a [`Document`]; see the module docs.
#[derive(Debug, Clone)]
pub struct DocIndex {
    /// Node arena index → DFS position.
    dfs_of: Vec<u32>,
    /// DFS position → node arena index.
    node_of: Vec<u32>,
    /// DFS position → exclusive end of the node's subtree range.
    end_at: Vec<u32>,
    /// DFS position → interned label.
    label_at: Vec<LabelId>,
    /// DFS position → node kind.
    kind_at: Vec<NodeKind>,
    /// DFS position → interned text value ([`NO_VALUE`] for elements).
    value_at: Vec<u32>,
    /// Label id → DFS positions of nodes carrying it, ascending.
    postings: Vec<Vec<u32>>,
    /// Text value → id.  Owned (not borrow-only) so that
    /// [`DocIndex::apply_delta`] can intern values of edited/inserted
    /// nodes consistently; ids are append-only and never recycled, so a
    /// value that disappears from the document keeps its id.
    values: HashMap<String, u32>,
    /// [`Document::epoch`] the index is current for.
    epoch: u64,
}

impl DocIndex {
    /// Builds the index in one DFS pass, interning every label of the
    /// document into `universe`.
    ///
    /// Labels already interned (e.g. by compiling a key set or a shred plan
    /// against the same universe first) keep their ids; ids are append-only,
    /// so the relative order of preparation does not matter.
    pub fn build(doc: &Document, universe: &mut LabelUniverse) -> Self {
        let n = doc.len();
        let mut dfs_of = vec![0u32; doc.arena_len()];
        let mut node_of = Vec::with_capacity(n);
        let mut end_at = vec![0u32; n];
        let mut label_at = Vec::with_capacity(n);
        let mut kind_at = Vec::with_capacity(n);
        let mut value_at = Vec::with_capacity(n);
        let mut postings: Vec<Vec<u32>> = vec![Vec::new(); universe.len()];
        let mut values: HashMap<String, u32> = HashMap::new();

        enum Frame {
            Enter(NodeId),
            Exit(u32),
        }
        let mut stack = vec![Frame::Enter(doc.root())];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(node) => {
                    let pos = node_of.len() as u32;
                    node_of.push(node.index() as u32);
                    dfs_of[node.index()] = pos;
                    let label = universe.intern(doc.label(node));
                    if postings.len() <= label.index() {
                        postings.resize(label.index() + 1, Vec::new());
                    }
                    postings[label.index()].push(pos);
                    label_at.push(label);
                    kind_at.push(doc.kind(node));
                    value_at.push(match doc.text_value(node) {
                        Some(text) => match values.get(text) {
                            Some(&id) => id,
                            None => {
                                let id = values.len() as u32;
                                values.insert(text.to_string(), id);
                                id
                            }
                        },
                        None => NO_VALUE,
                    });
                    stack.push(Frame::Exit(pos));
                    for &c in doc.child_slice(node).iter().rev() {
                        stack.push(Frame::Enter(c));
                    }
                }
                Frame::Exit(pos) => end_at[pos as usize] = node_of.len() as u32,
            }
        }
        // Labels interned after the document's (by later probe compilation)
        // have empty postings; size the table for everything known now so the
        // common case is a direct index.
        postings.resize(universe.len(), Vec::new());

        DocIndex {
            dfs_of,
            node_of,
            end_at,
            label_at,
            kind_at,
            value_at,
            postings,
            values,
            epoch: doc.epoch(),
        }
    }

    /// The number of nodes (equals [`Document::len`] of the indexed
    /// document).
    #[inline]
    pub fn len(&self) -> usize {
        self.node_of.len()
    }

    /// True if the indexed document contains only its root element.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_of.len() <= 1
    }

    /// The DFS position (document-order rank) of a node.  The root is
    /// position 0.
    #[inline]
    pub fn position(&self, node: NodeId) -> u32 {
        self.dfs_of[node.index()]
    }

    /// The node at a DFS position.
    #[inline]
    pub fn node_at(&self, pos: u32) -> NodeId {
        NodeId::from_index(self.node_of[pos as usize] as usize)
    }

    /// The exclusive end of the subtree range of the node at `pos`: the
    /// descendants-or-self of that node are exactly the positions
    /// `pos..subtree_end(pos)`.
    #[inline]
    pub fn subtree_end(&self, pos: u32) -> u32 {
        self.end_at[pos as usize]
    }

    /// The label of the node at `pos`.
    #[inline]
    pub fn label_at(&self, pos: u32) -> LabelId {
        self.label_at[pos as usize]
    }

    /// The kind of the node at `pos`.
    #[inline]
    pub fn kind_at(&self, pos: u32) -> NodeKind {
        self.kind_at[pos as usize]
    }

    /// The interned text-value id of the node at `pos` (attribute and text
    /// nodes), or `None` for elements.  Two nodes have equal ids iff their
    /// text values are equal strings.
    #[inline]
    pub fn value_id_at(&self, pos: u32) -> Option<u32> {
        let v = self.value_at[pos as usize];
        (v != NO_VALUE).then_some(v)
    }

    /// The number of distinct text values interned over the index's
    /// lifetime.  Equals the number of distinct values in the document for
    /// a freshly built index; after [`DocIndex::apply_delta`] removals it
    /// is an upper bound (ids of vanished values are retained, never
    /// recycled).
    pub fn distinct_values(&self) -> usize {
        self.values.len()
    }

    /// The [`Document::epoch`] this index is current for: the epoch at
    /// [`DocIndex::build`] time, advanced by every
    /// [`DocIndex::apply_delta`].
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True if the index is current for `doc` — built from it (or patched
    /// up to date with [`DocIndex::apply_delta`]) and `doc` has not been
    /// mutated since.
    #[inline]
    pub fn is_current_for(&self, doc: &Document) -> bool {
        self.epoch == doc.epoch()
    }

    /// Debug-asserts [`DocIndex::is_current_for`]: evaluation entry points
    /// call this so that using a stale index (document mutated after
    /// indexing) fails fast in debug builds instead of silently answering
    /// from outdated structure.
    #[inline]
    pub fn debug_assert_current(&self, doc: &Document) {
        debug_assert!(
            self.is_current_for(doc),
            "stale DocIndex: built at document epoch {} but the document is at epoch {} — \
             rebuild the index or patch it with apply_delta",
            self.epoch,
            doc.epoch(),
        );
    }

    /// The children of the node at `pos`, as DFS positions in document
    /// order.  Derived from the subtree ranges alone: the first child sits
    /// at `pos + 1`, each next child at the previous child's subtree end.
    #[inline]
    pub fn children_at(&self, pos: u32) -> ChildPositions<'_> {
        ChildPositions {
            index: self,
            next: pos + 1,
            end: self.subtree_end(pos),
        }
    }

    /// The document-order positions of every node labelled `label`
    /// (ascending; empty for labels the document does not use).
    #[inline]
    pub fn postings(&self, label: LabelId) -> &[u32] {
        self.postings
            .get(label.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All nodes in document order (the DFS pre-order that
    /// [`Document::descendants_or_self`] of the root yields).
    pub fn nodes_in_document_order(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_of.iter().map(|&n| NodeId::from_index(n as usize))
    }

    // ------------------------------------------------------------------
    // Incremental maintenance
    // ------------------------------------------------------------------

    /// Patches the index in place for one applied delta instead of
    /// rebuilding it: only the affected subtree range is renumbered, and
    /// subtree ranges, label postings and text-value ids are shifted by
    /// offset arithmetic.
    ///
    /// `doc` must be the document the delta was applied to, `applied` the
    /// receipt [`Document::apply`] returned, and `universe` the label
    /// universe the index was built against (inserted subtrees may intern
    /// new labels into it).  The index must be current up to *exactly*
    /// this delta — current for the document as it was just before the
    /// edit (debug-asserted through the epoch counter).
    ///
    /// Cost: `O(1)` for a text edit; for structural edits
    /// `O(subtree + suffix + depth)` where *suffix* is the number of index
    /// positions after the edit point — pure integer shifting, no label or
    /// value re-interning outside the touched subtree.
    pub fn apply_delta(
        &mut self,
        doc: &Document,
        applied: &AppliedDelta,
        universe: &mut LabelUniverse,
    ) {
        debug_assert_eq!(
            self.epoch + 1,
            doc.epoch(),
            "apply_delta needs an index current up to exactly the applied delta",
        );
        match *applied {
            AppliedDelta::SetText { node } => {
                let pos = self.dfs_of[node.index()] as usize;
                let text = doc
                    .text_value(node)
                    .expect("SetText targets carry a text value");
                self.value_at[pos] = self.intern_value(text);
            }
            AppliedDelta::Remove { parent, root, .. } => self.remove_range(doc, parent, root),
            AppliedDelta::Insert {
                parent,
                position,
                root,
                ..
            } => self.insert_range(doc, parent, position, root, universe),
        }
        self.epoch = doc.epoch();
    }

    /// Looks up or appends the id of a text value (the incremental
    /// counterpart of the build-time interner).
    fn intern_value(&mut self, text: &str) -> u32 {
        match self.values.get(text) {
            Some(&id) => id,
            None => {
                let id = self.values.len() as u32;
                self.values.insert(text.to_string(), id);
                id
            }
        }
    }

    /// Excises the (detached) subtree rooted at `root` from the numbering:
    /// positions after it shift down, ancestor subtree ranges shrink.
    fn remove_range(&mut self, doc: &Document, parent: NodeId, root: NodeId) {
        let p = self.dfs_of[root.index()] as usize;
        let e = self.end_at[p] as usize;
        let k = (e - p) as u32;
        // Ancestor ranges shrink; their positions (< p) don't move.
        let mut anc = Some(parent);
        while let Some(a) = anc {
            self.end_at[self.dfs_of[a.index()] as usize] -= k;
            anc = doc.parent(a);
        }
        // Postings: drop positions inside [p, e), shift the rest down.
        // Lists entirely before the edit are skipped by the binary search.
        let (pu, eu) = (p as u32, e as u32);
        for list in &mut self.postings {
            let lo = list.partition_point(|&x| x < pu);
            if lo == list.len() {
                continue;
            }
            let mut w = lo;
            for r in lo..list.len() {
                let x = list[r];
                if x < eu {
                    continue;
                }
                list[w] = x - k;
                w += 1;
            }
            list.truncate(w);
        }
        // Excise the columnar range and renumber the suffix.
        self.node_of.drain(p..e);
        self.label_at.drain(p..e);
        self.kind_at.drain(p..e);
        self.value_at.drain(p..e);
        self.end_at.drain(p..e);
        for end in &mut self.end_at[p..] {
            *end -= k;
        }
        for i in p..self.node_of.len() {
            self.dfs_of[self.node_of[i] as usize] = i as u32;
        }
    }

    /// Splices the freshly grafted subtree rooted at `root` (the
    /// `position`-th child of `parent`) into the numbering: positions
    /// after it shift up, ancestor subtree ranges grow, and the new
    /// nodes' labels/values are interned.
    fn insert_range(
        &mut self,
        doc: &Document,
        parent: NodeId,
        position: usize,
        root: NodeId,
        universe: &mut LabelUniverse,
    ) {
        // Where the subtree starts: right after the parent when it is the
        // first child, otherwise after the preceding sibling's subtree.
        let at = if position == 0 {
            self.dfs_of[parent.index()] + 1
        } else {
            let prev = doc
                .children(parent)
                .nth(position - 1)
                .expect("insert position was validated");
            self.end_at[self.dfs_of[prev.index()] as usize]
        } as usize;

        // Index the new subtree in one DFS pass, with positions relative
        // to `at`.
        let mut new_node_of = Vec::new();
        let mut new_label_at = Vec::new();
        let mut new_kind_at = Vec::new();
        let mut new_value_at = Vec::new();
        let mut new_end_at = Vec::new();
        let mut by_label: HashMap<LabelId, Vec<u32>> = HashMap::new();
        enum Frame {
            Enter(NodeId),
            Exit(usize),
        }
        let mut stack = vec![Frame::Enter(root)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(node) => {
                    let rel = new_node_of.len();
                    new_node_of.push(node.index() as u32);
                    let label = universe.intern(doc.label(node));
                    by_label.entry(label).or_default().push((at + rel) as u32);
                    new_label_at.push(label);
                    new_kind_at.push(doc.kind(node));
                    new_value_at.push(match doc.text_value(node) {
                        Some(text) => self.intern_value(text),
                        None => NO_VALUE,
                    });
                    new_end_at.push(0u32);
                    stack.push(Frame::Exit(rel));
                    for &c in doc.child_slice(node).iter().rev() {
                        stack.push(Frame::Enter(c));
                    }
                }
                Frame::Exit(rel) => new_end_at[rel] = (at + new_node_of.len()) as u32,
            }
        }
        let k = new_node_of.len() as u32;

        // Ancestor ranges grow; their positions (< at) don't move.
        let mut anc = Some(parent);
        while let Some(a) = anc {
            self.end_at[self.dfs_of[a.index()] as usize] += k;
            anc = doc.parent(a);
        }
        // Postings: shift positions at or after the splice point up, then
        // merge in the new subtree's positions (contiguous in [at, at+k)).
        let atu = at as u32;
        for list in &mut self.postings {
            let lo = list.partition_point(|&x| x < atu);
            for x in &mut list[lo..] {
                *x += k;
            }
        }
        self.postings.resize(universe.len(), Vec::new());
        for (label, positions) in by_label {
            let list = &mut self.postings[label.index()];
            let lo = list.partition_point(|&x| x < atu);
            list.splice(lo..lo, positions);
        }
        // Splice the columnar range and renumber from the splice point on.
        self.node_of.splice(at..at, new_node_of);
        self.label_at.splice(at..at, new_label_at);
        self.kind_at.splice(at..at, new_kind_at);
        self.value_at.splice(at..at, new_value_at);
        self.end_at.splice(at..at, new_end_at);
        for end in &mut self.end_at[at + k as usize..] {
            *end += k;
        }
        if self.dfs_of.len() < doc.arena_len() {
            self.dfs_of.resize(doc.arena_len(), 0);
        }
        for i in at..self.node_of.len() {
            self.dfs_of[self.node_of[i] as usize] = i as u32;
        }
    }
}

/// Iterator over the child positions of a node; see
/// [`DocIndex::children_at`].
#[derive(Debug, Clone)]
pub struct ChildPositions<'a> {
    index: &'a DocIndex,
    next: u32,
    end: u32,
}

impl Iterator for ChildPositions<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.next < self.end {
            let child = self.next;
            self.next = self.index.subtree_end(child);
            Some(child)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ElementBuilder;

    fn tiny() -> Document {
        ElementBuilder::new("db")
            .child(
                ElementBuilder::new("book")
                    .attr("isbn", "123")
                    .text_child("title", "XML"),
            )
            .child(ElementBuilder::new("book").attr("isbn", "234"))
            .build()
    }

    #[test]
    fn numbering_matches_document_order() {
        let doc = tiny();
        let mut u = LabelUniverse::new();
        let index = DocIndex::build(&doc, &mut u);
        assert_eq!(index.len(), doc.len());
        assert!(!index.is_empty());
        let in_order: Vec<NodeId> = index.nodes_in_document_order().collect();
        assert_eq!(in_order, doc.all_nodes());
        for (rank, &node) in in_order.iter().enumerate() {
            assert_eq!(index.position(node), rank as u32);
            assert_eq!(index.node_at(rank as u32), node);
        }
    }

    #[test]
    fn numbering_follows_document_order_not_node_ids() {
        // Mutation can append to an *earlier* parent, splitting NodeId order
        // from document order; the index must follow document order.
        let mut doc = Document::new("r");
        let a = doc.add_element(doc.root(), "a");
        let b = doc.add_element(doc.root(), "b");
        let c = doc.add_element(a, "c"); // id 3, but precedes b in doc order
        let mut u = LabelUniverse::new();
        let index = DocIndex::build(&doc, &mut u);
        assert!(index.position(c) < index.position(b));
        let in_order: Vec<NodeId> = index.nodes_in_document_order().collect();
        assert_eq!(in_order, vec![doc.root(), a, c, b]);
        assert_eq!(in_order, doc.all_nodes());
    }

    #[test]
    fn subtree_ranges_cover_descendants_or_self() {
        let doc = tiny();
        let mut u = LabelUniverse::new();
        let index = DocIndex::build(&doc, &mut u);
        for node in doc.all_nodes() {
            let pos = index.position(node);
            let range: Vec<NodeId> = (pos..index.subtree_end(pos))
                .map(|p| index.node_at(p))
                .collect();
            assert_eq!(range, doc.descendants_or_self(node), "subtree of {node}");
        }
    }

    #[test]
    fn children_iterate_in_document_order() {
        let doc = tiny();
        let mut u = LabelUniverse::new();
        let index = DocIndex::build(&doc, &mut u);
        for node in doc.all_nodes() {
            let pos = index.position(node);
            let children: Vec<NodeId> = index.children_at(pos).map(|p| index.node_at(p)).collect();
            let expected: Vec<NodeId> = doc.children(node).collect();
            assert_eq!(children, expected, "children of {node}");
        }
    }

    #[test]
    fn postings_list_label_occurrences_in_order() {
        let doc = tiny();
        let mut u = LabelUniverse::new();
        let index = DocIndex::build(&doc, &mut u);
        let book = u.lookup("book").unwrap();
        let posts = index.postings(book);
        assert_eq!(posts.len(), 2);
        assert!(posts.windows(2).all(|w| w[0] < w[1]));
        for &p in posts {
            assert_eq!(index.label_at(p), book);
            assert_eq!(doc.label(index.node_at(p)), "book");
        }
        assert!(index.postings(LabelId(9999)).is_empty());
    }

    #[test]
    fn value_ids_agree_with_string_equality() {
        let mut doc = Document::new("r");
        let a = doc.add_element(doc.root(), "a");
        doc.add_attribute(a, "x", "same");
        doc.add_attribute(a, "y", "same");
        doc.add_attribute(a, "z", "other");
        doc.add_text(a, "same");
        let mut u = LabelUniverse::new();
        let index = DocIndex::build(&doc, &mut u);
        let ids: Vec<Option<u32>> = doc
            .all_nodes()
            .into_iter()
            .map(|n| index.value_id_at(index.position(n)))
            .collect();
        // r, a are elements; @x, @y, @z, text follow in document order.
        assert_eq!(ids[0], None);
        assert_eq!(ids[1], None);
        assert_eq!(ids[2], ids[3], "equal values share an id");
        assert_ne!(ids[2], ids[4], "distinct values get distinct ids");
        assert_eq!(ids[2], ids[5], "text and attribute values share the pool");
        assert_eq!(index.distinct_values(), 2);
    }

    #[test]
    fn kinds_are_recorded() {
        let doc = tiny();
        let mut u = LabelUniverse::new();
        let index = DocIndex::build(&doc, &mut u);
        for node in doc.all_nodes() {
            assert_eq!(index.kind_at(index.position(node)), doc.kind(node));
        }
    }

    /// Asserts that a patched index answers every observable question the
    /// way a fresh build over the same (already extended) universe does.
    /// Text-value ids are compared as equivalence classes: the patched
    /// index may retain ids for values no longer present, but two live
    /// nodes must share an id iff a fresh build gives them a shared id.
    fn assert_matches_fresh(doc: &Document, index: &DocIndex, universe: &LabelUniverse) {
        index.debug_assert_current(doc);
        let mut u = universe.clone();
        let fresh = DocIndex::build(doc, &mut u);
        assert_eq!(index.len(), fresh.len());
        assert_eq!(index.len(), doc.len());
        let order: Vec<NodeId> = index.nodes_in_document_order().collect();
        let fresh_order: Vec<NodeId> = fresh.nodes_in_document_order().collect();
        assert_eq!(order, fresh_order, "document-order numbering");
        let mut incr_to_fresh: std::collections::HashMap<u32, u32> = Default::default();
        let mut fresh_to_incr: std::collections::HashMap<u32, u32> = Default::default();
        for (pos, &node) in order.iter().enumerate() {
            let pos = pos as u32;
            assert_eq!(index.position(node), pos);
            assert_eq!(index.node_at(pos), node);
            assert_eq!(
                index.subtree_end(pos),
                fresh.subtree_end(pos),
                "end at {pos}"
            );
            assert_eq!(index.label_at(pos), fresh.label_at(pos), "label at {pos}");
            assert_eq!(index.kind_at(pos), fresh.kind_at(pos), "kind at {pos}");
            let children: Vec<u32> = index.children_at(pos).collect();
            let fresh_children: Vec<u32> = fresh.children_at(pos).collect();
            assert_eq!(children, fresh_children, "children at {pos}");
            match (index.value_id_at(pos), fresh.value_id_at(pos)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(
                        *incr_to_fresh.entry(a).or_insert(b),
                        b,
                        "value-id classes diverge at {pos}"
                    );
                    assert_eq!(
                        *fresh_to_incr.entry(b).or_insert(a),
                        a,
                        "value-id classes diverge at {pos}"
                    );
                }
                (a, b) => panic!("value presence diverges at {pos}: {a:?} vs {b:?}"),
            }
        }
        for id in 0..u.len() {
            let label = LabelId(id as u32);
            assert_eq!(
                index.postings(label),
                fresh.postings(label),
                "postings for {}",
                u.name(label)
            );
        }
    }

    #[test]
    fn apply_delta_matches_fresh_build_over_a_script() {
        use crate::{Delta, Fragment};
        let mut doc = crate::sample::fig1();
        let mut u = LabelUniverse::new();
        let mut index = DocIndex::build(&doc, &mut u);
        let books: Vec<NodeId> = doc
            .all_nodes()
            .into_iter()
            .filter(|&n| doc.label(n) == "book")
            .collect();
        let isbn = doc.attribute_node(books[0], "isbn").unwrap();
        let chapter = doc.children_labelled(books[1], "chapter").next().unwrap();
        let script: Vec<Delta> = vec![
            Delta::SetText {
                node: isbn,
                text: "777".into(),
            },
            // New label + new value, positional insert in the middle.
            Delta::InsertSubtree {
                parent: books[0],
                position: 1,
                fragment: Fragment::Element(
                    Document::parse_str("<appendix number=\"A\"><name>Maps</name></appendix>")
                        .unwrap(),
                ),
            },
            Delta::RemoveSubtree { node: chapter },
            Delta::InsertSubtree {
                parent: books[1],
                position: 0,
                fragment: Fragment::Attribute {
                    name: "lang".into(),
                    value: "en".into(),
                },
            },
            Delta::SetText {
                node: isbn,
                text: "123".into(), // back to a previously interned value
            },
            Delta::InsertSubtree {
                parent: books[1],
                position: 2,
                fragment: Fragment::Text("trailing".into()),
            },
        ];
        for delta in &script {
            let applied = doc.apply(delta).unwrap();
            index.apply_delta(&doc, &applied, &mut u);
            assert_matches_fresh(&doc, &index, &u);
        }
    }

    #[test]
    fn apply_delta_removal_at_document_tail() {
        use crate::Delta;
        // Removing the last subtree exercises the empty-suffix path.
        let mut doc = tiny();
        let mut u = LabelUniverse::new();
        let mut index = DocIndex::build(&doc, &mut u);
        let last_book = doc.element_children(doc.root()).nth(1).unwrap();
        let applied = doc
            .apply(&Delta::RemoveSubtree { node: last_book })
            .unwrap();
        index.apply_delta(&doc, &applied, &mut u);
        assert_matches_fresh(&doc, &index, &u);
    }

    #[test]
    #[should_panic(expected = "stale DocIndex")]
    #[cfg(debug_assertions)]
    fn stale_index_is_debug_asserted() {
        let mut doc = tiny();
        let mut u = LabelUniverse::new();
        let index = DocIndex::build(&doc, &mut u);
        doc.add_element(doc.root(), "late");
        index.debug_assert_current(&doc);
    }

    #[test]
    fn prior_interning_is_respected_and_extended() {
        let doc = tiny();
        let mut u = LabelUniverse::new();
        let early = u.intern("book");
        let probe_only = u.intern("magazine");
        let index = DocIndex::build(&doc, &mut u);
        assert_eq!(u.lookup("book"), Some(early));
        assert_eq!(index.postings(early).len(), 2);
        assert!(index.postings(probe_only).is_empty());
    }
}
