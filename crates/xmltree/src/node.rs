//! Node identifiers and node kinds.

use std::fmt;

/// Identifier of a node within a [`crate::Document`].
///
/// Node identifiers are dense indices into the document arena.  They are only
/// meaningful together with the document that produced them; comparing
/// identifiers across documents is a logic error (but is memory-safe).
///
/// The paper's semantics of XML keys (Definition 2.1) is defined in terms of
/// node identity — two nodes with equal values are still distinct nodes — so
/// `NodeId` implements `Eq`/`Hash`/`Ord` and is used wherever the paper talks
/// about "the set of nodes reached by a path expression".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw index of this node in the document arena.
    ///
    /// Useful for diagnostics (the paper labels the nodes of Fig. 1 with small
    /// integers) and for building side tables indexed by node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw index.
    ///
    /// Intended for tests and for tools that rebuild node references from
    /// serialized diagnostics; passing an out-of-range index yields a value
    /// that any `Document` accessor will panic on, it never causes UB.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kind of a node in an XML tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An element node (`<book>...</book>`), labelled with its tag name.
    Element,
    /// An attribute node (`isbn="123"`), labelled `@isbn` in the paper's
    /// notation and carrying a string value.
    Attribute,
    /// A text node carrying character data (labelled `S` in Fig. 1).
    Text,
}

impl NodeKind {
    /// True if the node is an element.
    #[inline]
    pub fn is_element(self) -> bool {
        matches!(self, NodeKind::Element)
    }

    /// True if the node is an attribute.
    #[inline]
    pub fn is_attribute(self) -> bool {
        matches!(self, NodeKind::Attribute)
    }

    /// True if the node is a text node.
    #[inline]
    pub fn is_text(self) -> bool {
        matches!(self, NodeKind::Text)
    }
}

/// Internal arena record for one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct NodeData {
    pub(crate) kind: NodeKind,
    /// Element tag name, or attribute name **including** the leading `@`.
    /// Text nodes use the conventional label `S` (as in Fig. 1 of the paper).
    pub(crate) label: String,
    /// Text content for attribute and text nodes; unused for elements.
    pub(crate) text: String,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
}

impl NodeData {
    pub(crate) fn element(label: impl Into<String>, parent: Option<NodeId>) -> Self {
        NodeData {
            kind: NodeKind::Element,
            label: label.into(),
            text: String::new(),
            parent,
            children: Vec::new(),
        }
    }

    pub(crate) fn attribute(
        name: impl Into<String>,
        value: impl Into<String>,
        parent: NodeId,
    ) -> Self {
        let raw = name.into();
        let label = if raw.starts_with('@') {
            raw
        } else {
            format!("@{raw}")
        };
        NodeData {
            kind: NodeKind::Attribute,
            label,
            text: value.into(),
            parent: Some(parent),
            children: Vec::new(),
        }
    }

    pub(crate) fn text(value: impl Into<String>, parent: NodeId) -> Self {
        NodeData {
            kind: NodeKind::Text,
            label: "S".to_string(),
            text: value.into(),
            parent: Some(parent),
            children: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn node_kind_predicates() {
        assert!(NodeKind::Element.is_element());
        assert!(!NodeKind::Element.is_attribute());
        assert!(NodeKind::Attribute.is_attribute());
        assert!(!NodeKind::Attribute.is_text());
        assert!(NodeKind::Text.is_text());
        assert!(!NodeKind::Text.is_element());
    }

    #[test]
    fn attribute_label_gets_at_prefix() {
        let root = NodeId(0);
        let with = NodeData::attribute("@isbn", "123", root);
        let without = NodeData::attribute("isbn", "123", root);
        assert_eq!(with.label, "@isbn");
        assert_eq!(without.label, "@isbn");
    }

    #[test]
    fn text_nodes_are_labelled_s() {
        let root = NodeId(0);
        let t = NodeData::text("hello", root);
        assert_eq!(t.label, "S");
        assert_eq!(t.text, "hello");
    }
}
