//! The delta interface: first-class document edits.
//!
//! A [`Delta`] describes one edit to a [`Document`](crate::Document) —
//! inserting a subtree, removing a subtree, or rewriting the text of an
//! attribute/text node.  Edits are applied through
//! [`Document::apply`](crate::Document::apply), which validates the edit
//! and returns an [`AppliedDelta`] receipt; the receipt is what the
//! incremental maintenance layers ([`DocIndex::apply_delta`]
//! (crate::DocIndex::apply_delta), the key validator, the shred planner)
//! consume to patch their state without re-reading the whole document.
//!
//! The locality contract every incremental consumer relies on: after an
//! edit, the only nodes whose *subtree content* changed are the
//! [`AppliedDelta::dirty_node`] and its ancestors, plus (for inserts) the
//! freshly created nodes themselves.  Everything else — labels, text,
//! subtree serializations, child lists — is byte-identical to before the
//! edit.

use crate::{Document, NodeId};
use std::fmt;

/// One edit to a document; applied via [`Document::apply`].
#[derive(Debug, Clone)]
pub enum Delta {
    /// Insert `fragment` as the `position`-th child of `parent`
    /// (`position == 0` prepends, `position == children(parent).count()`
    /// appends).
    InsertSubtree {
        /// The element that receives the new child.
        parent: NodeId,
        /// Index in `parent`'s child list at which the fragment root lands.
        position: usize,
        /// The subtree to insert.
        fragment: Fragment,
    },
    /// Detach the subtree rooted at `node` (which may be a single
    /// attribute or text node) from its parent.
    RemoveSubtree {
        /// Root of the subtree to remove; must not be the document root.
        node: NodeId,
    },
    /// Replace the text carried by an attribute or text node.
    SetText {
        /// The attribute or text node to rewrite.
        node: NodeId,
        /// The new text value.
        text: String,
    },
}

/// The payload of a [`Delta::InsertSubtree`].
#[derive(Debug, Clone)]
pub enum Fragment {
    /// An element subtree, carried as a standalone document whose root is
    /// the element to insert (e.g. built with
    /// [`Document::parse_str`](crate::Document::parse_str) or
    /// [`crate::ElementBuilder`]).
    Element(Document),
    /// A single attribute node `@name = value` (the paper treats
    /// attributes as labelled children, so they insert like any subtree).
    Attribute {
        /// Attribute name, with or without the leading `@`.
        name: String,
        /// Attribute value.
        value: String,
    },
    /// A single text node.
    Text(String),
}

impl Fragment {
    /// Number of nodes this fragment will add to a document.
    pub fn len(&self) -> usize {
        match self {
            Fragment::Element(doc) => doc.len(),
            Fragment::Attribute { .. } | Fragment::Text(_) => 1,
        }
    }

    /// True if the fragment adds no nodes (never the case for the current
    /// variants; present for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Receipt for a successfully applied [`Delta`]: exactly what the
/// incremental index/validator/shredder layers need to locate the dirty
/// region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppliedDelta {
    /// A subtree of `nodes` nodes rooted at `root` was inserted as the
    /// `position`-th child of `parent`.
    Insert {
        /// The element that received the new child.
        parent: NodeId,
        /// Child index at which the subtree root now sits.
        position: usize,
        /// The (freshly allocated) root of the inserted subtree.
        root: NodeId,
        /// Size of the inserted subtree.
        nodes: usize,
    },
    /// The subtree of `nodes` nodes rooted at `root` was detached from
    /// `parent`.
    Remove {
        /// The element the subtree was detached from.
        parent: NodeId,
        /// The (now detached) root of the removed subtree.
        root: NodeId,
        /// Size of the removed subtree.
        nodes: usize,
    },
    /// The text of `node` was replaced.
    SetText {
        /// The rewritten attribute or text node.
        node: NodeId,
    },
}

impl AppliedDelta {
    /// The deepest node that survives the edit and whose subtree content
    /// changed.  The full dirty set of surviving nodes is exactly this
    /// node plus its ancestors (see the module docs); nodes outside that
    /// chain kept their subtree content byte-for-byte.
    pub fn dirty_node(&self) -> NodeId {
        match *self {
            AppliedDelta::Insert { parent, .. } | AppliedDelta::Remove { parent, .. } => parent,
            AppliedDelta::SetText { node } => node,
        }
    }

    /// Net node-count change of the edit.
    pub fn nodes_added(&self) -> isize {
        match *self {
            AppliedDelta::Insert { nodes, .. } => nodes as isize,
            AppliedDelta::Remove { nodes, .. } => -(nodes as isize),
            AppliedDelta::SetText { .. } => 0,
        }
    }
}

/// Why a [`Delta`] could not be applied; see [`Document::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// The referenced node is out of range for this document, or was
    /// already detached by an earlier removal.
    UnknownNode(NodeId),
    /// The document root cannot be removed.
    RemoveRoot,
    /// Insert position exceeds the parent's child count.
    PositionOutOfRange {
        /// The would-be parent.
        parent: NodeId,
        /// The requested child index.
        position: usize,
        /// The parent's actual child count.
        children: usize,
    },
    /// Subtrees can only be inserted under element nodes.
    InsertUnderNonElement(NodeId),
    /// `SetText` targets must be attribute or text nodes.
    SetTextOnElement(NodeId),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DeltaError::UnknownNode(n) => {
                write!(f, "unknown or detached node {n}")
            }
            DeltaError::RemoveRoot => write!(f, "cannot remove the document root"),
            DeltaError::PositionOutOfRange {
                parent,
                position,
                children,
            } => write!(
                f,
                "position {position} out of range for {parent} ({children} children)"
            ),
            DeltaError::InsertUnderNonElement(n) => {
                write!(f, "cannot insert under non-element node {n}")
            }
            DeltaError::SetTextOnElement(n) => {
                write!(f, "cannot set text on element node {n}")
            }
        }
    }
}

impl std::error::Error for DeltaError {}
