//! Errors produced by the XML parser.

use std::fmt;

/// An error encountered while parsing XML text.
///
/// The parser is non-validating and deliberately small (the paper ignores
/// DTDs and schema languages), but it reports precise positions so that test
/// fixtures and example data are easy to debug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// 1-based line number of the error.
    pub line: usize,
    /// 1-based column (in characters) of the error.
    pub column: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(offset: usize, input: &str, message: impl Into<String>) -> Self {
        let (line, column) = position(input, offset);
        ParseError {
            offset,
            line,
            column,
            message: message.into(),
        }
    }
}

/// Computes the (line, column) of a byte offset in `input`.
fn position(input: &str, offset: usize) -> (usize, usize) {
    let mut line = 1;
    let mut column = 1;
    for (i, ch) in input.char_indices() {
        if i >= offset {
            break;
        }
        if ch == '\n' {
            line += 1;
            column = 1;
        } else {
            column += 1;
        }
    }
    (line, column)
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at line {}, column {} (byte {}): {}",
            self.line, self.column, self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_tracks_lines_and_columns() {
        let input = "ab\ncd\nef";
        assert_eq!(position(input, 0), (1, 1));
        assert_eq!(position(input, 1), (1, 2));
        assert_eq!(position(input, 3), (2, 1));
        assert_eq!(position(input, 7), (3, 2));
    }

    #[test]
    fn display_is_informative() {
        let e = ParseError::new(3, "ab\ncd", "unexpected `c`");
        let s = e.to_string();
        assert!(s.contains("line 2"));
        assert!(s.contains("byte 3"), "{s}");
        assert!(s.contains("unexpected `c`"));
    }
}
