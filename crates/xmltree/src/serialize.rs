//! Serialization of documents back to XML text.

use crate::{Document, NodeId, NodeKind};
use std::fmt::Write as _;

/// Serializes a document to XML text (single line, no indentation).
pub fn to_xml(doc: &Document) -> String {
    let mut out = String::new();
    write_node(doc, doc.root(), &mut out);
    out
}

/// Serializes a document to XML text with two-space indentation, which is
/// easier to read in example output.
pub fn to_pretty_xml(doc: &Document) -> String {
    let mut out = String::new();
    write_node_pretty(doc, doc.root(), 0, &mut out);
    out
}

fn escape_text(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(ch),
        }
    }
}

fn escape_attr(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
}

fn write_open_tag(doc: &Document, id: NodeId, out: &mut String) -> bool {
    out.push('<');
    out.push_str(doc.label(id));
    let mut has_content_children = false;
    for c in doc.children(id) {
        match doc.kind(c) {
            NodeKind::Attribute => {
                let name = doc.label(c).trim_start_matches('@');
                let _ = write!(out, " {name}=\"");
                escape_attr(doc.text_value(c).unwrap_or(""), out);
                out.push('"');
            }
            _ => has_content_children = true,
        }
    }
    if has_content_children {
        out.push('>');
    } else {
        out.push_str("/>");
    }
    has_content_children
}

fn write_node(doc: &Document, id: NodeId, out: &mut String) {
    match doc.kind(id) {
        NodeKind::Text => escape_text(doc.text_value(id).unwrap_or(""), out),
        NodeKind::Attribute => {
            // Attributes are emitted by their parent element.
        }
        NodeKind::Element => {
            let has_children = write_open_tag(doc, id, out);
            if has_children {
                for c in doc.children(id) {
                    if !doc.kind(c).is_attribute() {
                        write_node(doc, c, out);
                    }
                }
                let _ = write!(out, "</{}>", doc.label(id));
            }
        }
    }
}

fn write_node_pretty(doc: &Document, id: NodeId, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match doc.kind(id) {
        NodeKind::Text => {
            out.push_str(&pad);
            escape_text(doc.text_value(id).unwrap_or(""), out);
            out.push('\n');
        }
        NodeKind::Attribute => {}
        NodeKind::Element => {
            out.push_str(&pad);
            let has_children = write_open_tag(doc, id, out);
            if !has_children {
                out.push('\n');
                return;
            }
            // If the only non-attribute child is a single text node, keep it inline.
            let content: Vec<NodeId> = doc
                .children(id)
                .filter(|&c| !doc.kind(c).is_attribute())
                .collect();
            if content.len() == 1 && doc.kind(content[0]).is_text() {
                escape_text(doc.text_value(content[0]).unwrap_or(""), out);
                let _ = write!(out, "</{}>", doc.label(id));
                out.push('\n');
                return;
            }
            out.push('\n');
            for c in content {
                write_node_pretty(doc, c, indent + 1, out);
            }
            out.push_str(&pad);
            let _ = write!(out, "</{}>", doc.label(id));
            out.push('\n');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ElementBuilder;

    fn sample() -> Document {
        ElementBuilder::new("db")
            .child(
                ElementBuilder::new("book")
                    .attr("isbn", "123")
                    .text_child("title", "X < Y & Z")
                    .child(ElementBuilder::new("empty")),
            )
            .build()
    }

    #[test]
    fn serializes_and_escapes() {
        let xml = to_xml(&sample());
        assert_eq!(
            xml,
            r#"<db><book isbn="123"><title>X &lt; Y &amp; Z</title><empty/></book></db>"#
        );
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let doc = sample();
        let pretty = to_pretty_xml(&doc);
        assert!(pretty.contains('\n'));
        let reparsed = crate::parse(&pretty).unwrap();
        assert_eq!(doc.value(doc.root()), reparsed.value(reparsed.root()));
    }

    #[test]
    fn attribute_values_are_escaped() {
        let doc = ElementBuilder::new("r").attr("q", "a\"b<c").build();
        let xml = to_xml(&doc);
        assert_eq!(xml, r#"<r q="a&quot;b&lt;c"/>"#);
        let reparsed = crate::parse(&xml).unwrap();
        assert_eq!(reparsed.attribute(reparsed.root(), "q"), Some("a\"b<c"));
    }
}
