//! Interned node labels: the string ↔ [`LabelId`] table shared by the whole
//! document pipeline.
//!
//! Element tags and attribute names (`@isbn` interns like any label) are
//! mapped to dense `u32` ids so that every layer above — compiled path
//! expressions in `xmlprop-xmlpath`, the prepared key index in
//! `xmlprop-xmlkeys`, shred plans in `xmlprop-xmltransform` — can compare
//! labels with an integer comparison and index plain vectors.  The table
//! lives in this crate (rather than the path crate where the compiled
//! expression layer sits) because [`crate::DocIndex`] stores a `LabelId` per
//! document node: the document side and the constraint side of the system
//! must agree on one universe.
//!
//! Ids are **append-only**: extending a universe (interning a document after
//! compiling a key set, or vice versa) never invalidates previously issued
//! ids, so prepared state built against a prefix of the universe stays
//! valid.

use std::collections::BTreeMap;

/// An interned node label: an index into a [`LabelUniverse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(pub u32);

impl LabelId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string ↔ [`LabelId`] interning table for node labels and attribute
/// names.
///
/// Ids are dense (`0..len`), assigned in first-intern order, so they can
/// index plain vectors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelUniverse {
    names: Vec<String>,
    attrs: Vec<bool>,
    ids: BTreeMap<String, LabelId>,
}

impl LabelUniverse {
    /// An empty universe.
    pub fn new() -> Self {
        LabelUniverse::default()
    }

    /// The number of interned labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = LabelId(u32::try_from(self.names.len()).expect("label universe overflow"));
        self.names.push(name.to_string());
        self.attrs.push(name.starts_with('@'));
        self.ids.insert(name.to_string(), id);
        id
    }

    /// The id of `name`, if it has been interned.
    pub fn lookup(&self, name: &str) -> Option<LabelId> {
        self.ids.get(name).copied()
    }

    /// The name behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this universe (temporary
    /// scratch ids from [`LabelUniverse::lookup_scratch`] included).
    pub fn name(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// All interned names, in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// True if the id names an attribute (`@`-prefixed label).  Scratch ids
    /// beyond the interned range answer `false`.
    pub fn is_attr(&self, id: LabelId) -> bool {
        self.attrs.get(id.index()).copied().unwrap_or(false)
    }

    /// The id of `name` without interning: an interned label keeps its id,
    /// an unknown one receives a temporary id past the interned range,
    /// allocated consistently through `scratch` (pass the same map for every
    /// lookup of one query so that repeated unknown labels agree).
    pub fn lookup_scratch(&self, name: &str, scratch: &mut BTreeMap<String, LabelId>) -> LabelId {
        if let Some(id) = self.lookup(name) {
            return id;
        }
        if let Some(&id) = scratch.get(name) {
            return id;
        }
        let id = LabelId(
            u32::try_from(self.names.len() + scratch.len()).expect("label universe overflow"),
        );
        scratch.insert(name.to_string(), id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_round_trips() {
        let mut u = LabelUniverse::new();
        let a = u.intern("book");
        let b = u.intern("@isbn");
        assert_eq!(u.intern("book"), a);
        assert_eq!(u.len(), 2);
        assert_eq!(u.name(a), "book");
        assert_eq!(u.lookup("@isbn"), Some(b));
        assert_eq!(u.lookup("nope"), None);
        assert!(!u.is_attr(a));
        assert!(u.is_attr(b));
        assert!(!u.is_attr(LabelId(99)));
        assert_eq!(u.names(), &["book", "@isbn"]);
        assert!(!u.is_empty());
    }

    #[test]
    fn scratch_lookups_are_consistent_and_non_interning() {
        let mut u = LabelUniverse::new();
        let known = u.intern("a");
        let mut scratch = BTreeMap::new();
        let x1 = u.lookup_scratch("x", &mut scratch);
        let x2 = u.lookup_scratch("x", &mut scratch);
        let y = u.lookup_scratch("y", &mut scratch);
        assert_eq!(u.lookup_scratch("a", &mut scratch), known);
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
        assert!(x1.index() >= u.len() && y.index() >= u.len());
        assert_eq!(u.len(), 1, "scratch lookups must not intern");
    }
}
