//! The arena-backed XML document.

use crate::node::{NodeData, NodeId, NodeKind};
use crate::ParseError;
use std::fmt;

/// An XML document stored as an arena of nodes.
///
/// The document always has a single root element.  Nodes are addressed by
/// [`NodeId`]; the arena never removes nodes, so identifiers stay valid for
/// the lifetime of the document.
///
/// Construction paths:
///
/// * [`Document::new`] + mutation methods ([`Document::add_element`],
///   [`Document::add_attribute`], [`Document::add_text`]);
/// * the fluent [`crate::ElementBuilder`];
/// * [`Document::parse_str`] for textual XML.
///
/// # Document order
///
/// *Document order* is the DFS pre-order of the tree: a node precedes its
/// subtree, siblings follow each other in insertion order.  This is the
/// order [`Document::descendants_or_self`], [`Document::all_nodes`] and
/// every path-evaluation result use.  **`NodeId` order is not document
/// order in general**: ids are handed out in creation order, and mutation
/// may append a child to an *earlier* parent after later siblings exist
/// (the parser and [`crate::ElementBuilder`] never do, so for documents
/// built by them the two orders coincide —
/// [`Document::ids_in_document_order`] reports whether that still holds).
/// Code that needs document order must rank nodes by DFS position, e.g.
/// through a [`crate::DocIndex`], not by `NodeId`.
/// Equality is *structural identity* of the arenas (same nodes, same ids,
/// same child order) — what the corpus-generation reproducibility tests
/// compare; two structurally equal trees built in different insertion
/// orders may compare unequal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    nodes: Vec<NodeData>,
    root: NodeId,
    /// The most recently created node.
    last: NodeId,
    /// True while `NodeId` order coincides with document order; see the
    /// struct docs.
    id_order: bool,
}

impl Document {
    /// Creates a document with a single root element labelled `root_label`.
    pub fn new(root_label: impl Into<String>) -> Self {
        let root_data = NodeData::element(root_label, None);
        Document {
            nodes: vec![root_data],
            root: NodeId(0),
            last: NodeId(0),
            id_order: true,
        }
    }

    /// Parses a document from XML text.  See [`crate::parse`].
    pub fn parse_str(input: &str) -> Result<Self, ParseError> {
        crate::parse(input)
    }

    /// The root element of the document.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The number of nodes in the document (elements, attributes and text).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the document contains only the root element.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()]
    }

    fn data_mut(&mut self, id: NodeId) -> &mut NodeData {
        &mut self.nodes[id.index()]
    }

    /// The kind of node `id`.
    #[inline]
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.data(id).kind
    }

    /// The label of node `id`: tag name for elements, `@name` for attributes,
    /// `S` for text nodes (following Fig. 1 of the paper).
    #[inline]
    pub fn label(&self, id: NodeId) -> &str {
        &self.data(id).label
    }

    /// The text carried by an attribute or text node, `None` for elements.
    pub fn text_value(&self, id: NodeId) -> Option<&str> {
        match self.data(id).kind {
            NodeKind::Element => None,
            NodeKind::Attribute | NodeKind::Text => Some(self.data(id).text.as_str()),
        }
    }

    /// The parent of `id`, or `None` for the root.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).parent
    }

    /// Iterator over the children of `id` in document order (attributes first,
    /// in insertion order, then elements/text in insertion order — matching
    /// the order in which they were added or parsed).
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.data(id).children.iter().copied()
    }

    /// The children of `id` as a slice (crate-internal: lets the one-pass
    /// [`crate::DocIndex`] traversal push child frames without an iterator
    /// per node).
    pub(crate) fn child_slice(&self, id: NodeId) -> &[NodeId] {
        &self.data(id).children
    }

    /// True while `NodeId` order coincides with document order — i.e. every
    /// node so far was appended under the previously created node or one of
    /// its ancestors, which is how the parser and [`crate::ElementBuilder`]
    /// construct documents.  Once mutation appends a child to an earlier
    /// parent (creating a node whose id is larger than that of a node
    /// following it in document order) this permanently becomes `false`, and
    /// document-order consumers must rank nodes by DFS position instead.
    #[inline]
    pub fn ids_in_document_order(&self) -> bool {
        self.id_order
    }

    /// Children of `id` carrying a particular label (e.g. `"chapter"` or
    /// `"@isbn"`).
    pub fn children_labelled<'a>(
        &'a self,
        id: NodeId,
        label: &'a str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.children(id).filter(move |&c| self.label(c) == label)
    }

    /// All element children of `id`.
    pub fn element_children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id).filter(|&c| self.kind(c).is_element())
    }

    /// The attribute node named `name` (with or without the leading `@`)
    /// attached to element `id`, if any.  When the element carries several
    /// attribute nodes with the same name (which the paper's model permits,
    /// even though well-formed XML does not) the first one is returned.
    pub fn attribute_node(&self, id: NodeId, name: &str) -> Option<NodeId> {
        let want = if name.starts_with('@') {
            name.to_string()
        } else {
            format!("@{name}")
        };
        self.children(id)
            .find(|&c| self.kind(c).is_attribute() && self.label(c) == want)
    }

    /// The string value of attribute `name` on element `id`, if present.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attribute_node(id, name)
            .and_then(|n| self.text_value(n))
    }

    /// Concatenated text content of all text-node descendants of `id`
    /// (the usual "string value" of an element).  For attribute and text
    /// nodes this is just their own text.
    pub fn string_value(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match self.kind(id) {
            NodeKind::Text | NodeKind::Attribute => out.push_str(&self.data(id).text),
            NodeKind::Element => {
                for c in self.children(id) {
                    if !self.kind(c).is_attribute() {
                        self.collect_text(c, out);
                    }
                }
            }
        }
    }

    /// Pre-order traversal of the subtree rooted at `id`, including `id`.
    pub fn descendants_or_self(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            // Push children in reverse so they pop in document order.
            for &c in self.data(n).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Proper descendants of `id` in document order.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut all = self.descendants_or_self(id);
        all.remove(0);
        all
    }

    /// All nodes of the document in document order.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        self.descendants_or_self(self.root)
    }

    /// Ancestors of `id` from its parent up to (and including) the root.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent(p);
        }
        out
    }

    /// True if `anc` is an ancestor of `id` (proper, i.e. `anc != id`).
    pub fn is_ancestor(&self, anc: NodeId, id: NodeId) -> bool {
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// The depth of node `id` (the root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).len()
    }

    /// The maximum node depth in the document.
    pub fn height(&self) -> usize {
        self.all_nodes()
            .into_iter()
            .map(|n| self.depth(n))
            .max()
            .unwrap_or(0)
    }

    /// The sequence of labels on the path from the root to `id`, excluding the
    /// root's own label.  This is the "path of the node" used when checking
    /// whether a node is reached by a path expression rooted at the document
    /// root.
    pub fn path_from_root(&self, id: NodeId) -> Vec<String> {
        let mut labels: Vec<String> = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            if n == self.root {
                break;
            }
            labels.push(self.label(n).to_string());
            cur = self.parent(n);
        }
        labels.reverse();
        labels
    }

    /// The sequence of labels on the path from ancestor `from` down to `to`,
    /// excluding `from`'s own label.  Returns `None` if `from` is not an
    /// ancestor-or-self of `to`.
    pub fn path_between(&self, from: NodeId, to: NodeId) -> Option<Vec<String>> {
        let mut labels: Vec<String> = Vec::new();
        let mut cur = to;
        loop {
            if cur == from {
                labels.reverse();
                return Some(labels);
            }
            labels.push(self.label(cur).to_string());
            cur = self.parent(cur)?;
        }
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    fn push_node(&mut self, data: NodeData) -> NodeId {
        // NodeId order tracks document order exactly while every new node
        // goes under the previous node or one of its ancestors (a DFS-style
        // construction).  Appending anywhere else interleaves the orders.
        if let Some(parent) = data.parent {
            if self.id_order && parent != self.last && !self.is_ancestor(parent, self.last) {
                self.id_order = false;
            }
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("document too large"));
        self.nodes.push(data);
        self.last = id;
        id
    }

    /// Adds an element child labelled `label` under `parent` and returns its id.
    pub fn add_element(&mut self, parent: NodeId, label: impl Into<String>) -> NodeId {
        let id = self.push_node(NodeData::element(label, Some(parent)));
        self.data_mut(parent).children.push(id);
        id
    }

    /// Adds an attribute node `@name = value` under element `parent`.
    pub fn add_attribute(
        &mut self,
        parent: NodeId,
        name: impl Into<String>,
        value: impl Into<String>,
    ) -> NodeId {
        let id = self.push_node(NodeData::attribute(name, value, parent));
        self.data_mut(parent).children.push(id);
        id
    }

    /// Adds a text node under element `parent`.
    pub fn add_text(&mut self, parent: NodeId, value: impl Into<String>) -> NodeId {
        let id = self.push_node(NodeData::text(value, parent));
        self.data_mut(parent).children.push(id);
        id
    }

    // ------------------------------------------------------------------
    // value() — the paper's field-population function
    // ------------------------------------------------------------------

    /// The `value` function of the paper's transformation semantics
    /// (Section 2, Example 2.5): a string representing the pre-order
    /// traversal of the subtree rooted at `id`.
    ///
    /// * For attribute and text nodes this is simply their text content —
    ///   which is what ends up in relational fields in all the paper's
    ///   examples.
    /// * For element nodes the serialization lists the node's attributes and
    ///   children recursively, e.g. the `chapter` node 11 of Fig. 1 yields
    ///   `(@number:1, name:(S:Introduction))`.
    pub fn value(&self, id: NodeId) -> String {
        match self.kind(id) {
            NodeKind::Attribute | NodeKind::Text => self.data(id).text.clone(),
            NodeKind::Element => {
                let mut out = String::new();
                self.value_children(id, &mut out);
                out
            }
        }
    }

    fn value_children(&self, id: NodeId, out: &mut String) {
        out.push('(');
        let mut first = true;
        for c in self.children(id) {
            if !first {
                out.push_str(", ");
            }
            first = false;
            match self.kind(c) {
                NodeKind::Attribute => {
                    out.push_str(self.label(c));
                    out.push(':');
                    out.push_str(&self.data(c).text);
                }
                NodeKind::Text => {
                    out.push_str("S:");
                    out.push_str(&self.data(c).text);
                }
                NodeKind::Element => {
                    out.push_str(self.label(c));
                    out.push(':');
                    self.value_children(c, out);
                }
            }
        }
        out.push(')');
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::serialize::to_xml(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Document {
        let mut d = Document::new("db");
        let book = d.add_element(d.root(), "book");
        d.add_attribute(book, "isbn", "123");
        let title = d.add_element(book, "title");
        d.add_text(title, "XML");
        d
    }

    #[test]
    fn navigation_basics() {
        let d = tiny();
        let root = d.root();
        assert_eq!(d.label(root), "db");
        assert_eq!(d.parent(root), None);
        let book = d.element_children(root).next().unwrap();
        assert_eq!(d.label(book), "book");
        assert_eq!(d.parent(book), Some(root));
        assert_eq!(d.attribute(book, "isbn"), Some("123"));
        assert_eq!(d.attribute(book, "@isbn"), Some("123"));
        assert_eq!(d.attribute(book, "missing"), None);
        let title = d.children_labelled(book, "title").next().unwrap();
        assert_eq!(d.string_value(title), "XML");
    }

    #[test]
    fn descendants_and_ancestors() {
        let d = tiny();
        let root = d.root();
        let all = d.descendants_or_self(root);
        assert_eq!(all.len(), d.len());
        assert_eq!(all[0], root);
        let title = all
            .iter()
            .copied()
            .find(|&n| d.label(n) == "title")
            .unwrap();
        let anc = d.ancestors(title);
        assert_eq!(anc.len(), 2); // book, db
        assert!(d.is_ancestor(root, title));
        assert!(!d.is_ancestor(title, root));
        assert_eq!(d.depth(title), 2);
        assert_eq!(d.height(), 3); // text node under title
    }

    #[test]
    fn paths() {
        let d = tiny();
        let title = d
            .all_nodes()
            .into_iter()
            .find(|&n| d.label(n) == "title")
            .unwrap();
        assert_eq!(
            d.path_from_root(title),
            vec!["book".to_string(), "title".to_string()]
        );
        let book = d.parent(title).unwrap();
        assert_eq!(d.path_between(book, title), Some(vec!["title".to_string()]));
        assert_eq!(d.path_between(title, book), None);
        assert_eq!(d.path_between(title, title), Some(vec![]));
    }

    #[test]
    fn value_of_attribute_and_text() {
        let d = tiny();
        let book = d.element_children(d.root()).next().unwrap();
        let isbn = d.attribute_node(book, "isbn").unwrap();
        assert_eq!(d.value(isbn), "123");
        let title = d.children_labelled(book, "title").next().unwrap();
        let text = d.children(title).next().unwrap();
        assert_eq!(d.value(text), "XML");
    }

    #[test]
    fn value_of_element_is_preorder() {
        let d = tiny();
        let book = d.element_children(d.root()).next().unwrap();
        assert_eq!(d.value(book), "(@isbn:123, title:(S:XML))");
    }

    #[test]
    fn string_value_skips_attributes() {
        let d = tiny();
        let book = d.element_children(d.root()).next().unwrap();
        assert_eq!(d.string_value(book), "XML");
    }

    #[test]
    fn id_order_flag_tracks_out_of_order_appends() {
        // DFS-style construction (parser, builder, straight-line mutation)
        // keeps NodeId order equal to document order...
        let mut doc = Document::new("r");
        let a = doc.add_element(doc.root(), "a");
        doc.add_attribute(a, "x", "1");
        let b = doc.add_element(a, "b");
        doc.add_text(b, "t");
        doc.add_element(doc.root(), "c"); // parent is an ancestor of `last`
        assert!(doc.ids_in_document_order());
        // ...but appending under an earlier, non-ancestor parent splits the
        // two orders permanently.
        let late = doc.add_element(a, "late");
        assert!(!doc.ids_in_document_order());
        let order = doc.all_nodes();
        let rank = |n: NodeId| order.iter().position(|&m| m == n).unwrap();
        assert!(late > *order.last().unwrap());
        assert!(rank(late) < order.len() - 1, "late precedes c in doc order");
    }

    #[test]
    fn empty_document() {
        let d = Document::new("r");
        assert!(d.is_empty());
        assert_eq!(d.len(), 1);
        assert_eq!(d.height(), 0);
        assert_eq!(d.value(d.root()), "()");
    }
}
