//! The arena-backed XML document.

use crate::delta::{AppliedDelta, Delta, DeltaError, Fragment};
use crate::node::{NodeData, NodeId, NodeKind};
use crate::ParseError;
use std::fmt;

/// An XML document stored as an arena of nodes.
///
/// The document always has a single root element.  Nodes are addressed by
/// [`NodeId`]; the arena never reuses slots, so an identifier handed out
/// once always refers to the same node data.  [`Document::remove_subtree`]
/// *detaches* a subtree rather than freeing it: the detached nodes stay in
/// the arena as tombstones (their ids become invalid for navigation — a
/// logic error to keep using, never UB), [`Document::len`] counts only
/// attached nodes, and [`Document::arena_len`] bounds raw indices for
/// side tables.
///
/// Construction paths:
///
/// * [`Document::new`] + mutation methods ([`Document::add_element`],
///   [`Document::add_attribute`], [`Document::add_text`]);
/// * the fluent [`crate::ElementBuilder`];
/// * [`Document::parse_str`] for textual XML.
///
/// Post-construction edits go through [`Document::apply`] (insert/remove
/// subtree, set text — see [`Delta`]) or the underlying primitives
/// [`Document::remove_subtree`] / [`Document::set_text`].  Every mutation
/// bumps a monotonically increasing [`Document::epoch`] counter, which
/// prepared structures ([`crate::DocIndex`]) record and debug-assert
/// against: using an index built before the latest mutation is a logic
/// error unless the index was patched with
/// [`crate::DocIndex::apply_delta`].
///
/// # Document order
///
/// *Document order* is the DFS pre-order of the tree: a node precedes its
/// subtree, siblings follow each other in insertion order.  This is the
/// order [`Document::descendants_or_self`], [`Document::all_nodes`] and
/// every path-evaluation result use.  **`NodeId` order is not document
/// order in general**: ids are handed out in creation order, and mutation
/// may append a child to an *earlier* parent after later siblings exist
/// (the parser and [`crate::ElementBuilder`] never do, so for documents
/// built by them the two orders coincide —
/// [`Document::ids_in_document_order`] reports whether that still holds).
/// Code that needs document order must rank nodes by DFS position, e.g.
/// through a [`crate::DocIndex`], not by `NodeId`.
/// Equality is *structural identity* of the arenas (same nodes, same ids,
/// same child order) — what the corpus-generation reproducibility tests
/// compare; two structurally equal trees built in different insertion
/// orders may compare unequal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    nodes: Vec<NodeData>,
    root: NodeId,
    /// The most recently created node.
    last: NodeId,
    /// True while `NodeId` order coincides with document order; see the
    /// struct docs.
    id_order: bool,
    /// Number of attached (non-tombstone) nodes.
    live: usize,
    /// Mutation counter; see [`Document::epoch`].
    epoch: u64,
}

impl Document {
    /// Creates a document with a single root element labelled `root_label`.
    pub fn new(root_label: impl Into<String>) -> Self {
        let root_data = NodeData::element(root_label, None);
        Document {
            nodes: vec![root_data],
            root: NodeId(0),
            last: NodeId(0),
            id_order: true,
            live: 1,
            epoch: 0,
        }
    }

    /// Parses a document from XML text.  See [`crate::parse`].
    pub fn parse_str(input: &str) -> Result<Self, ParseError> {
        crate::parse(input)
    }

    /// The root element of the document.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The number of attached nodes in the document (elements, attributes
    /// and text).  Nodes detached by [`Document::remove_subtree`] are not
    /// counted.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the document contains only the root element.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live <= 1
    }

    /// The arena size: one more than the largest raw [`NodeId::index`]
    /// ever handed out, *including* detached nodes.  Side tables indexed by
    /// raw node index must be sized by this, not [`Document::len`].
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// The mutation counter: starts at 0 and increases by one for every
    /// mutation ([`Document::add_element`] and friends,
    /// [`Document::remove_subtree`], [`Document::set_text`], one per
    /// [`Document::apply`]).  Prepared structures record the epoch they
    /// were built at and refuse (in debug builds) to serve a document that
    /// has moved on.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True if `id` addresses an attached node of this document: in range
    /// and reachable from the root (not detached by an earlier
    /// [`Document::remove_subtree`]).
    pub fn contains(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len() && self.is_attached(id)
    }

    /// Walks the parent chain to decide whether `id` is still reachable
    /// from the root.  O(depth).
    fn is_attached(&self, id: NodeId) -> bool {
        let mut cur = id;
        loop {
            if cur == self.root {
                return true;
            }
            match self.data(cur).parent {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()]
    }

    fn data_mut(&mut self, id: NodeId) -> &mut NodeData {
        &mut self.nodes[id.index()]
    }

    /// The kind of node `id`.
    #[inline]
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.data(id).kind
    }

    /// The label of node `id`: tag name for elements, `@name` for attributes,
    /// `S` for text nodes (following Fig. 1 of the paper).
    #[inline]
    pub fn label(&self, id: NodeId) -> &str {
        &self.data(id).label
    }

    /// The text carried by an attribute or text node, `None` for elements.
    pub fn text_value(&self, id: NodeId) -> Option<&str> {
        match self.data(id).kind {
            NodeKind::Element => None,
            NodeKind::Attribute | NodeKind::Text => Some(self.data(id).text.as_str()),
        }
    }

    /// The parent of `id`, or `None` for the root.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).parent
    }

    /// Iterator over the children of `id` in document order (attributes first,
    /// in insertion order, then elements/text in insertion order — matching
    /// the order in which they were added or parsed).
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.data(id).children.iter().copied()
    }

    /// The children of `id` as a slice (crate-internal: lets the one-pass
    /// [`crate::DocIndex`] traversal push child frames without an iterator
    /// per node).
    pub(crate) fn child_slice(&self, id: NodeId) -> &[NodeId] {
        &self.data(id).children
    }

    /// True while `NodeId` order coincides with document order — i.e. every
    /// node so far was appended under the previously created node or one of
    /// its ancestors, which is how the parser and [`crate::ElementBuilder`]
    /// construct documents.  Once mutation appends a child to an earlier
    /// parent (creating a node whose id is larger than that of a node
    /// following it in document order) this permanently becomes `false`, and
    /// document-order consumers must rank nodes by DFS position instead.
    #[inline]
    pub fn ids_in_document_order(&self) -> bool {
        self.id_order
    }

    /// Children of `id` carrying a particular label (e.g. `"chapter"` or
    /// `"@isbn"`).
    pub fn children_labelled<'a>(
        &'a self,
        id: NodeId,
        label: &'a str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.children(id).filter(move |&c| self.label(c) == label)
    }

    /// All element children of `id`.
    pub fn element_children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id).filter(|&c| self.kind(c).is_element())
    }

    /// The attribute node named `name` (with or without the leading `@`)
    /// attached to element `id`, if any.  When the element carries several
    /// attribute nodes with the same name (which the paper's model permits,
    /// even though well-formed XML does not) the first one is returned.
    pub fn attribute_node(&self, id: NodeId, name: &str) -> Option<NodeId> {
        let want = if name.starts_with('@') {
            name.to_string()
        } else {
            format!("@{name}")
        };
        self.children(id)
            .find(|&c| self.kind(c).is_attribute() && self.label(c) == want)
    }

    /// The string value of attribute `name` on element `id`, if present.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attribute_node(id, name)
            .and_then(|n| self.text_value(n))
    }

    /// Concatenated text content of all text-node descendants of `id`
    /// (the usual "string value" of an element).  For attribute and text
    /// nodes this is just their own text.
    pub fn string_value(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match self.kind(id) {
            NodeKind::Text | NodeKind::Attribute => out.push_str(&self.data(id).text),
            NodeKind::Element => {
                for c in self.children(id) {
                    if !self.kind(c).is_attribute() {
                        self.collect_text(c, out);
                    }
                }
            }
        }
    }

    /// Pre-order traversal of the subtree rooted at `id`, including `id`.
    pub fn descendants_or_self(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            // Push children in reverse so they pop in document order.
            for &c in self.data(n).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Proper descendants of `id` in document order.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut all = self.descendants_or_self(id);
        all.remove(0);
        all
    }

    /// All nodes of the document in document order.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        self.descendants_or_self(self.root)
    }

    /// Ancestors of `id` from its parent up to (and including) the root.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent(p);
        }
        out
    }

    /// True if `anc` is an ancestor of `id` (proper, i.e. `anc != id`).
    pub fn is_ancestor(&self, anc: NodeId, id: NodeId) -> bool {
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// The depth of node `id` (the root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).len()
    }

    /// The maximum node depth in the document.
    pub fn height(&self) -> usize {
        self.all_nodes()
            .into_iter()
            .map(|n| self.depth(n))
            .max()
            .unwrap_or(0)
    }

    /// The sequence of labels on the path from the root to `id`, excluding the
    /// root's own label.  This is the "path of the node" used when checking
    /// whether a node is reached by a path expression rooted at the document
    /// root.
    pub fn path_from_root(&self, id: NodeId) -> Vec<String> {
        let mut labels: Vec<String> = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            if n == self.root {
                break;
            }
            labels.push(self.label(n).to_string());
            cur = self.parent(n);
        }
        labels.reverse();
        labels
    }

    /// The sequence of labels on the path from ancestor `from` down to `to`,
    /// excluding `from`'s own label.  Returns `None` if `from` is not an
    /// ancestor-or-self of `to`.
    pub fn path_between(&self, from: NodeId, to: NodeId) -> Option<Vec<String>> {
        let mut labels: Vec<String> = Vec::new();
        let mut cur = to;
        loop {
            if cur == from {
                labels.reverse();
                return Some(labels);
            }
            labels.push(self.label(cur).to_string());
            cur = self.parent(cur)?;
        }
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    fn push_node(&mut self, data: NodeData) -> NodeId {
        // NodeId order tracks document order exactly while every new node
        // goes under the previous node or one of its ancestors (a DFS-style
        // construction).  Appending anywhere else interleaves the orders.
        if let Some(parent) = data.parent {
            if self.id_order && parent != self.last && !self.is_ancestor(parent, self.last) {
                self.id_order = false;
            }
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("document too large"));
        self.nodes.push(data);
        self.last = id;
        self.live += 1;
        id
    }

    /// Adds an element child labelled `label` under `parent` and returns its id.
    pub fn add_element(&mut self, parent: NodeId, label: impl Into<String>) -> NodeId {
        let id = self.push_node(NodeData::element(label, Some(parent)));
        self.data_mut(parent).children.push(id);
        self.epoch += 1;
        id
    }

    /// Adds an attribute node `@name = value` under element `parent`.
    pub fn add_attribute(
        &mut self,
        parent: NodeId,
        name: impl Into<String>,
        value: impl Into<String>,
    ) -> NodeId {
        let id = self.push_node(NodeData::attribute(name, value, parent));
        self.data_mut(parent).children.push(id);
        self.epoch += 1;
        id
    }

    /// Adds a text node under element `parent`.
    pub fn add_text(&mut self, parent: NodeId, value: impl Into<String>) -> NodeId {
        let id = self.push_node(NodeData::text(value, parent));
        self.data_mut(parent).children.push(id);
        self.epoch += 1;
        id
    }

    /// Detaches the subtree rooted at `node` from its parent and returns
    /// the number of nodes detached.  The arena slots are kept as
    /// tombstones ([`NodeId`]s of the detached nodes become invalid for
    /// navigation — a logic error, never UB); `NodeId` order of the
    /// surviving nodes is a subsequence of the old order, so
    /// [`Document::ids_in_document_order`] is unaffected.
    ///
    /// Panics when `node` is the root or already detached; the checked
    /// equivalent is [`Document::apply`] with [`Delta::RemoveSubtree`].
    pub fn remove_subtree(&mut self, node: NodeId) -> usize {
        assert!(node != self.root, "cannot remove the document root");
        assert!(
            self.contains(node),
            "cannot remove unknown or detached node {node}"
        );
        let parent = self
            .data(node)
            .parent
            .expect("non-root attached node has a parent");
        let children = &mut self.data_mut(parent).children;
        let slot = children
            .iter()
            .position(|&c| c == node)
            .expect("parent/child links are consistent");
        children.remove(slot);
        self.data_mut(node).parent = None;
        let removed = self.descendants_or_self(node).len();
        self.live -= removed;
        self.epoch += 1;
        removed
    }

    /// Replaces the text carried by attribute or text node `node`.
    ///
    /// Panics when `node` is an element, unknown or detached; the checked
    /// equivalent is [`Document::apply`] with [`Delta::SetText`].
    pub fn set_text(&mut self, node: NodeId, text: impl Into<String>) {
        assert!(
            self.contains(node),
            "cannot set text on unknown or detached node {node}"
        );
        assert!(
            !self.kind(node).is_element(),
            "cannot set text on element node {node}"
        );
        self.data_mut(node).text = text.into();
        self.epoch += 1;
    }

    /// Applies one [`Delta`] to the document, validating it first, and
    /// returns the [`AppliedDelta`] receipt the incremental maintenance
    /// layers consume.  On error the document is unchanged.  Exactly one
    /// epoch tick per successful call, regardless of subtree size.
    pub fn apply(&mut self, delta: &Delta) -> Result<AppliedDelta, DeltaError> {
        match delta {
            Delta::RemoveSubtree { node } => {
                let node = *node;
                if node == self.root {
                    return Err(DeltaError::RemoveRoot);
                }
                if !self.contains(node) {
                    return Err(DeltaError::UnknownNode(node));
                }
                let parent = self.data(node).parent.expect("checked non-root");
                let nodes = self.remove_subtree(node);
                Ok(AppliedDelta::Remove {
                    parent,
                    root: node,
                    nodes,
                })
            }
            Delta::SetText { node, text } => {
                let node = *node;
                if !self.contains(node) {
                    return Err(DeltaError::UnknownNode(node));
                }
                if self.kind(node).is_element() {
                    return Err(DeltaError::SetTextOnElement(node));
                }
                self.set_text(node, text.clone());
                Ok(AppliedDelta::SetText { node })
            }
            Delta::InsertSubtree {
                parent,
                position,
                fragment,
            } => {
                let parent = *parent;
                let position = *position;
                if !self.contains(parent) {
                    return Err(DeltaError::UnknownNode(parent));
                }
                if !self.kind(parent).is_element() {
                    return Err(DeltaError::InsertUnderNonElement(parent));
                }
                let children = self.data(parent).children.len();
                if position > children {
                    return Err(DeltaError::PositionOutOfRange {
                        parent,
                        position,
                        children,
                    });
                }
                let (root, nodes) = self.graft(parent, position, fragment);
                self.epoch += 1;
                Ok(AppliedDelta::Insert {
                    parent,
                    position,
                    root,
                    nodes,
                })
            }
        }
    }

    /// Copies `fragment` into the arena as the `position`-th child of
    /// `parent` (validated by the caller).  Returns the new subtree root
    /// and node count.  Does not tick the epoch.
    fn graft(&mut self, parent: NodeId, position: usize, fragment: &Fragment) -> (NodeId, usize) {
        let appended = position == self.data(parent).children.len();
        let root = match fragment {
            Fragment::Attribute { name, value } => {
                let id = self.push_node(NodeData::attribute(name.clone(), value.clone(), parent));
                self.data_mut(parent).children.push(id);
                id
            }
            Fragment::Text(text) => {
                let id = self.push_node(NodeData::text(text.clone(), parent));
                self.data_mut(parent).children.push(id);
                id
            }
            Fragment::Element(frag) => {
                // Copy the fragment in document order so the new subtree is
                // internally DFS-ordered; remap fragment ids to fresh ids.
                let mut map = vec![u32::MAX; frag.arena_len()];
                let mut root = self.root; // overwritten on the first node
                for n in frag.all_nodes() {
                    let id = if n == frag.root() {
                        let id = self.push_node(NodeData {
                            kind: frag.kind(n),
                            label: frag.data(n).label.clone(),
                            text: frag.data(n).text.clone(),
                            parent: Some(parent),
                            children: Vec::new(),
                        });
                        self.data_mut(parent).children.push(id);
                        root = id;
                        id
                    } else {
                        let new_parent =
                            NodeId(map[frag.data(n).parent.expect("non-root").index()]);
                        let id = self.push_node(NodeData {
                            kind: frag.kind(n),
                            label: frag.data(n).label.clone(),
                            text: frag.data(n).text.clone(),
                            parent: Some(new_parent),
                            children: Vec::new(),
                        });
                        self.data_mut(new_parent).children.push(id);
                        id
                    };
                    map[n.index()] = id.0;
                }
                root
            }
        };
        let count = match fragment {
            Fragment::Element(frag) => frag.len(),
            _ => 1,
        };
        if !appended {
            // Move the root from the appended slot to the requested one;
            // ids now interleave with document order.
            let children = &mut self.data_mut(parent).children;
            let id = children.pop().expect("just pushed");
            children.insert(position, id);
            self.id_order = false;
        }
        (root, count)
    }

    // ------------------------------------------------------------------
    // value() — the paper's field-population function
    // ------------------------------------------------------------------

    /// The `value` function of the paper's transformation semantics
    /// (Section 2, Example 2.5): a string representing the pre-order
    /// traversal of the subtree rooted at `id`.
    ///
    /// * For attribute and text nodes this is simply their text content —
    ///   which is what ends up in relational fields in all the paper's
    ///   examples.
    /// * For element nodes the serialization lists the node's attributes and
    ///   children recursively, e.g. the `chapter` node 11 of Fig. 1 yields
    ///   `(@number:1, name:(S:Introduction))`.
    pub fn value(&self, id: NodeId) -> String {
        match self.kind(id) {
            NodeKind::Attribute | NodeKind::Text => self.data(id).text.clone(),
            NodeKind::Element => {
                let mut out = String::new();
                self.value_children(id, &mut out);
                out
            }
        }
    }

    fn value_children(&self, id: NodeId, out: &mut String) {
        out.push('(');
        let mut first = true;
        for c in self.children(id) {
            if !first {
                out.push_str(", ");
            }
            first = false;
            match self.kind(c) {
                NodeKind::Attribute => {
                    out.push_str(self.label(c));
                    out.push(':');
                    out.push_str(&self.data(c).text);
                }
                NodeKind::Text => {
                    out.push_str("S:");
                    out.push_str(&self.data(c).text);
                }
                NodeKind::Element => {
                    out.push_str(self.label(c));
                    out.push(':');
                    self.value_children(c, out);
                }
            }
        }
        out.push(')');
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::serialize::to_xml(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Document {
        let mut d = Document::new("db");
        let book = d.add_element(d.root(), "book");
        d.add_attribute(book, "isbn", "123");
        let title = d.add_element(book, "title");
        d.add_text(title, "XML");
        d
    }

    #[test]
    fn navigation_basics() {
        let d = tiny();
        let root = d.root();
        assert_eq!(d.label(root), "db");
        assert_eq!(d.parent(root), None);
        let book = d.element_children(root).next().unwrap();
        assert_eq!(d.label(book), "book");
        assert_eq!(d.parent(book), Some(root));
        assert_eq!(d.attribute(book, "isbn"), Some("123"));
        assert_eq!(d.attribute(book, "@isbn"), Some("123"));
        assert_eq!(d.attribute(book, "missing"), None);
        let title = d.children_labelled(book, "title").next().unwrap();
        assert_eq!(d.string_value(title), "XML");
    }

    #[test]
    fn descendants_and_ancestors() {
        let d = tiny();
        let root = d.root();
        let all = d.descendants_or_self(root);
        assert_eq!(all.len(), d.len());
        assert_eq!(all[0], root);
        let title = all
            .iter()
            .copied()
            .find(|&n| d.label(n) == "title")
            .unwrap();
        let anc = d.ancestors(title);
        assert_eq!(anc.len(), 2); // book, db
        assert!(d.is_ancestor(root, title));
        assert!(!d.is_ancestor(title, root));
        assert_eq!(d.depth(title), 2);
        assert_eq!(d.height(), 3); // text node under title
    }

    #[test]
    fn paths() {
        let d = tiny();
        let title = d
            .all_nodes()
            .into_iter()
            .find(|&n| d.label(n) == "title")
            .unwrap();
        assert_eq!(
            d.path_from_root(title),
            vec!["book".to_string(), "title".to_string()]
        );
        let book = d.parent(title).unwrap();
        assert_eq!(d.path_between(book, title), Some(vec!["title".to_string()]));
        assert_eq!(d.path_between(title, book), None);
        assert_eq!(d.path_between(title, title), Some(vec![]));
    }

    #[test]
    fn value_of_attribute_and_text() {
        let d = tiny();
        let book = d.element_children(d.root()).next().unwrap();
        let isbn = d.attribute_node(book, "isbn").unwrap();
        assert_eq!(d.value(isbn), "123");
        let title = d.children_labelled(book, "title").next().unwrap();
        let text = d.children(title).next().unwrap();
        assert_eq!(d.value(text), "XML");
    }

    #[test]
    fn value_of_element_is_preorder() {
        let d = tiny();
        let book = d.element_children(d.root()).next().unwrap();
        assert_eq!(d.value(book), "(@isbn:123, title:(S:XML))");
    }

    #[test]
    fn string_value_skips_attributes() {
        let d = tiny();
        let book = d.element_children(d.root()).next().unwrap();
        assert_eq!(d.string_value(book), "XML");
    }

    #[test]
    fn id_order_flag_tracks_out_of_order_appends() {
        // DFS-style construction (parser, builder, straight-line mutation)
        // keeps NodeId order equal to document order...
        let mut doc = Document::new("r");
        let a = doc.add_element(doc.root(), "a");
        doc.add_attribute(a, "x", "1");
        let b = doc.add_element(a, "b");
        doc.add_text(b, "t");
        doc.add_element(doc.root(), "c"); // parent is an ancestor of `last`
        assert!(doc.ids_in_document_order());
        // ...but appending under an earlier, non-ancestor parent splits the
        // two orders permanently.
        let late = doc.add_element(a, "late");
        assert!(!doc.ids_in_document_order());
        let order = doc.all_nodes();
        let rank = |n: NodeId| order.iter().position(|&m| m == n).unwrap();
        assert!(late > *order.last().unwrap());
        assert!(rank(late) < order.len() - 1, "late precedes c in doc order");
    }

    #[test]
    fn empty_document() {
        let d = Document::new("r");
        assert!(d.is_empty());
        assert_eq!(d.len(), 1);
        assert_eq!(d.height(), 0);
        assert_eq!(d.value(d.root()), "()");
    }

    #[test]
    fn remove_subtree_detaches_and_counts() {
        let mut d = tiny();
        let before = d.len();
        let book = d.element_children(d.root()).next().unwrap();
        let title = d.children_labelled(book, "title").next().unwrap();
        let removed = d.remove_subtree(title);
        assert_eq!(removed, 2); // title + its text node
        assert_eq!(d.len(), before - 2);
        assert_eq!(d.arena_len(), before, "arena keeps tombstone slots");
        assert!(!d.contains(title));
        assert!(d.contains(book));
        assert!(d.children_labelled(book, "title").next().is_none());
        assert_eq!(d.all_nodes().len(), d.len());
    }

    #[test]
    fn remove_subtree_handles_attributes() {
        let mut d = tiny();
        let book = d.element_children(d.root()).next().unwrap();
        let isbn = d.attribute_node(book, "isbn").unwrap();
        assert_eq!(d.remove_subtree(isbn), 1);
        assert_eq!(d.attribute(book, "isbn"), None);
        assert_eq!(d.value(book), "(title:(S:XML))");
    }

    #[test]
    fn set_text_rewrites_attributes_and_text() {
        let mut d = tiny();
        let book = d.element_children(d.root()).next().unwrap();
        let isbn = d.attribute_node(book, "isbn").unwrap();
        d.set_text(isbn, "999");
        assert_eq!(d.attribute(book, "isbn"), Some("999"));
        let title = d.children_labelled(book, "title").next().unwrap();
        let text = d.children(title).next().unwrap();
        d.set_text(text, "Relational");
        assert_eq!(d.string_value(book), "Relational");
    }

    #[test]
    #[should_panic(expected = "cannot remove the document root")]
    fn remove_root_panics() {
        let mut d = tiny();
        d.remove_subtree(d.root());
    }

    #[test]
    #[should_panic(expected = "element node")]
    fn set_text_on_element_panics() {
        let mut d = tiny();
        let book = d.element_children(d.root()).next().unwrap();
        d.set_text(book, "nope");
    }

    #[test]
    fn epoch_ticks_once_per_mutation() {
        let mut d = Document::new("r");
        let e0 = d.epoch();
        let a = d.add_element(d.root(), "a");
        assert_eq!(d.epoch(), e0 + 1);
        d.add_attribute(a, "x", "1");
        d.add_text(a, "t");
        assert_eq!(d.epoch(), e0 + 3);
        let clone = d.clone();
        assert_eq!(clone.epoch(), d.epoch());
        d.remove_subtree(a);
        assert_eq!(d.epoch(), e0 + 4);
        let applied = d
            .apply(&crate::Delta::InsertSubtree {
                parent: d.root(),
                position: 0,
                fragment: crate::Fragment::Element(tiny()),
            })
            .unwrap();
        assert_eq!(d.epoch(), e0 + 5, "apply ticks once, not once per node");
        assert_eq!(applied.nodes_added(), tiny().len() as isize);
    }

    #[test]
    fn apply_validates_before_mutating() {
        use crate::{Delta, DeltaError, Fragment};
        let mut d = tiny();
        let book = d.element_children(d.root()).next().unwrap();
        let isbn = d.attribute_node(book, "isbn").unwrap();
        let epoch = d.epoch();
        let bytes = crate::to_xml(&d);
        let bogus = NodeId::from_index(9999);
        let cases: Vec<(Delta, DeltaError)> = vec![
            (
                Delta::RemoveSubtree { node: d.root() },
                DeltaError::RemoveRoot,
            ),
            (
                Delta::RemoveSubtree { node: bogus },
                DeltaError::UnknownNode(bogus),
            ),
            (
                Delta::SetText {
                    node: book,
                    text: "x".into(),
                },
                DeltaError::SetTextOnElement(book),
            ),
            (
                Delta::InsertSubtree {
                    parent: isbn,
                    position: 0,
                    fragment: Fragment::Text("x".into()),
                },
                DeltaError::InsertUnderNonElement(isbn),
            ),
            (
                Delta::InsertSubtree {
                    parent: book,
                    position: 99,
                    fragment: Fragment::Text("x".into()),
                },
                DeltaError::PositionOutOfRange {
                    parent: book,
                    position: 99,
                    children: 2,
                },
            ),
        ];
        for (delta, want) in cases {
            assert_eq!(d.apply(&delta).unwrap_err(), want);
        }
        assert_eq!(d.epoch(), epoch, "failed applies leave the epoch alone");
        assert_eq!(
            crate::to_xml(&d),
            bytes,
            "failed applies leave the tree alone"
        );
        // A node detached earlier is rejected like an unknown one.
        let mut d2 = d.clone();
        let title = d2.children_labelled(book, "title").next().unwrap();
        d2.remove_subtree(title);
        assert_eq!(
            d2.apply(&Delta::SetText {
                node: title,
                text: "x".into()
            })
            .unwrap_err(),
            DeltaError::UnknownNode(title),
        );
    }

    #[test]
    fn positional_insert_lands_where_asked() {
        use crate::{Delta, Fragment};
        let mut d = Document::new("db");
        let a = d.add_element(d.root(), "a");
        d.add_element(d.root(), "c");
        assert!(d.ids_in_document_order());
        let applied = d
            .apply(&Delta::InsertSubtree {
                parent: d.root(),
                position: 1,
                fragment: Fragment::Element(Document::new("b")),
            })
            .unwrap();
        let crate::AppliedDelta::Insert { root, nodes, .. } = applied else {
            panic!("expected Insert receipt");
        };
        assert_eq!(nodes, 1);
        let labels: Vec<&str> = d.children(d.root()).map(|c| d.label(c)).collect();
        assert_eq!(labels, ["a", "b", "c"]);
        assert_eq!(d.parent(root), Some(d.root()));
        assert!(
            !d.ids_in_document_order(),
            "a positional insert interleaves NodeId and document order"
        );
        // Removal of a subtree keeps the flag truthful: surviving ids are a
        // subsequence of the old order.
        let mut d2 = Document::new("db");
        let a2 = d2.add_element(d2.root(), "a");
        d2.add_text(a2, "t");
        d2.add_element(d2.root(), "c");
        assert!(d2.ids_in_document_order());
        d2.remove_subtree(a2);
        assert!(d2.ids_in_document_order());
        let _ = a; // ids stay comparable but unused hereafter
    }

    #[test]
    fn apply_round_trips_through_serialization() {
        use crate::{Delta, Fragment};
        let mut d = tiny();
        let book = d.element_children(d.root()).next().unwrap();
        let isbn = d.attribute_node(book, "isbn").unwrap();
        d.apply(&Delta::SetText {
            node: isbn,
            text: "X&<\"'>".into(),
        })
        .unwrap();
        d.apply(&Delta::InsertSubtree {
            parent: book,
            position: 2,
            fragment: Fragment::Element(
                Document::parse_str("<chapter number=\"1\"><name>Intro</name></chapter>").unwrap(),
            ),
        })
        .unwrap();
        let title = d.children_labelled(book, "title").next().unwrap();
        d.apply(&Delta::RemoveSubtree { node: title }).unwrap();
        let xml = crate::to_xml(&d);
        let reparsed = Document::parse_str(&xml).unwrap();
        assert_eq!(crate::to_xml(&reparsed), xml, "serialize→parse round-trip");
        assert_eq!(reparsed.len(), d.len());
    }
}
