//! Compiled path expressions: interned labels plus a precomputed block
//! decomposition.
//!
//! The string-based [`PathExpr`] containment test re-splits both expressions
//! into `Vec<Vec<&str>>` blocks on every call and compares labels by string
//! equality.  For one-shot questions that is fine; the propagation
//! algorithms, however, ask thousands of containment questions against the
//! *same* key set, so this module mirrors the interning approach of
//! `xmlprop_reldb::intern` on the path layer:
//!
//! * [`LabelUniverse`] — a string ↔ [`LabelId`] interning table shared by
//!   element tags and attribute names (`@isbn` interns like any label).  The
//!   table itself lives in `xmlprop_xmltree` (re-exported here), because the
//!   document index stores a `LabelId` per node and both sides of the system
//!   must agree on one universe; the [`PathCompiler`] extension trait adds
//!   the expression-compilation methods on top.
//! * [`CompiledExpr`] — a path expression whose atoms are interned and whose
//!   block decomposition (label runs between `//` gaps) is precomputed at
//!   compile time, so [`CompiledExpr::contained_in`] and
//!   [`CompiledExpr::matches_word`] run the generic decision procedure of
//!   [`crate::contained_in`] over `LabelId` slices with **zero per-call
//!   allocation**.  [`CompiledExpr::evaluate`] evaluates `n[[P]]` over a
//!   prepared [`xmlprop_xmltree::DocIndex`] (see [`crate::EvalScratch`]).
//!
//! Two compiled expressions are only comparable when they were compiled
//! against the same universe (or one universe extended from the other —
//! ids are append-only).  [`PathCompiler::compile_scratch`] supports
//! read-only compilation of probe expressions: labels absent from the
//! universe receive consistent temporary ids past the interned range, which
//! keeps containment exact (two distinct unknown labels never compare
//! equal, and no unknown label equals an interned one).

use crate::containment::contained_blocks;
use crate::expr::{Atom, PathExpr};
use std::collections::BTreeMap;

pub use xmlprop_xmltree::{LabelId, LabelUniverse};

/// Expression compilation over a [`LabelUniverse`].
///
/// The universe type is defined in `xmlprop_xmltree` (the document index
/// stores a `LabelId` per node); this trait adds the path-expression
/// methods that belong to this crate.  It is implemented for
/// [`LabelUniverse`] only and comes into scope with
/// `use xmlprop_xmlpath::PathCompiler`.
pub trait PathCompiler {
    /// Compiles an expression, interning every label it mentions.
    fn compile(&mut self, expr: &PathExpr) -> CompiledExpr;

    /// Compiles an expression **without** interning, resolving every label
    /// through [`LabelUniverse::lookup_scratch`] (unknown labels receive
    /// consistent temporary ids past the interned range).
    fn compile_scratch(
        &self,
        expr: &PathExpr,
        scratch: &mut BTreeMap<String, LabelId>,
    ) -> CompiledExpr;
}

impl PathCompiler for LabelUniverse {
    fn compile(&mut self, expr: &PathExpr) -> CompiledExpr {
        let atoms: Vec<CompiledAtom> = expr
            .atoms()
            .iter()
            .map(|a| match a {
                Atom::Label(l) => CompiledAtom::Label(self.intern(l)),
                Atom::AnyPath => CompiledAtom::AnyPath,
            })
            .collect();
        CompiledExpr::from_normalized_atoms(atoms)
    }

    fn compile_scratch(
        &self,
        expr: &PathExpr,
        scratch: &mut BTreeMap<String, LabelId>,
    ) -> CompiledExpr {
        let atoms: Vec<CompiledAtom> = expr
            .atoms()
            .iter()
            .map(|a| match a {
                Atom::Label(l) => CompiledAtom::Label(self.lookup_scratch(l, scratch)),
                Atom::AnyPath => CompiledAtom::AnyPath,
            })
            .collect();
        CompiledExpr::from_normalized_atoms(atoms)
    }
}

/// One atom of a [`CompiledExpr`]; mirrors [`Atom`] with interned labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CompiledAtom {
    /// An interned node label.
    Label(LabelId),
    /// The `//` wildcard.
    AnyPath,
}

/// A compiled path expression: interned atoms plus the precomputed block
/// decomposition the containment algorithm works on.
///
/// Blocks (maximal label runs between `//` gaps) are stored as ranges into
/// one flat label vector; an expression with `g` gaps has exactly `g + 1`
/// blocks (`ε` is one empty block).  Containment and word matching are
/// id-slice comparisons over this precomputed shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompiledExpr {
    atoms: Vec<CompiledAtom>,
    labels: Vec<LabelId>,
    block_ends: Vec<u32>,
}

impl CompiledExpr {
    /// Builds a compiled expression from normalized atoms (consecutive
    /// `AnyPath` atoms collapsed, as [`PathExpr`] guarantees).
    fn from_normalized_atoms(atoms: Vec<CompiledAtom>) -> Self {
        let mut labels = Vec::with_capacity(atoms.len());
        let mut block_ends = Vec::new();
        for atom in &atoms {
            match atom {
                CompiledAtom::Label(id) => labels.push(*id),
                CompiledAtom::AnyPath => block_ends.push(labels.len() as u32),
            }
        }
        block_ends.push(labels.len() as u32);
        CompiledExpr {
            atoms,
            labels,
            block_ends,
        }
    }

    /// The empty path `ε`.
    pub fn epsilon() -> Self {
        CompiledExpr::from_normalized_atoms(Vec::new())
    }

    /// Builds a compiled expression from already-interned atoms,
    /// normalizing `//` runs (the compiled counterpart of
    /// [`PathExpr::from_atoms`]).  Callers that slice an existing
    /// expression's atoms — the target-to-context splits of key
    /// implication — rebuild the block decomposition through this.
    pub fn from_atoms(atoms: impl IntoIterator<Item = CompiledAtom>) -> Self {
        let mut out: Vec<CompiledAtom> = Vec::new();
        for a in atoms {
            if a == CompiledAtom::AnyPath && out.last() == Some(&CompiledAtom::AnyPath) {
                continue;
            }
            out.push(a);
        }
        CompiledExpr::from_normalized_atoms(out)
    }

    /// The compiled atoms, in order.
    pub fn atoms(&self) -> &[CompiledAtom] {
        &self.atoms
    }

    /// The number of atoms (`|P|`).
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if this is the empty path `ε`.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// True if this is the empty path `ε` (alias mirroring
    /// [`PathExpr::is_epsilon`]).
    pub fn is_epsilon(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The number of blocks (gaps + 1).
    #[inline]
    fn num_blocks(&self) -> usize {
        self.block_ends.len()
    }

    /// The `i`-th block as a label slice.
    #[inline]
    fn block(&self, i: usize) -> &[LabelId] {
        let lo = if i == 0 {
            0
        } else {
            self.block_ends[i - 1] as usize
        };
        &self.labels[lo..self.block_ends[i] as usize]
    }

    /// Language containment `self ⊑ other`, allocation-free.  Both sides
    /// must have been compiled against the same universe (plus, for probe
    /// expressions, one shared scratch map).
    pub fn contained_in(&self, other: &CompiledExpr) -> bool {
        contained_blocks(
            self.num_blocks(),
            |i| self.block(i),
            other.num_blocks(),
            |i| other.block(i),
        )
    }

    /// Language equivalence (containment in both directions).
    pub fn equivalent(&self, other: &CompiledExpr) -> bool {
        self.contained_in(other) && other.contained_in(self)
    }

    /// Membership of a concrete word (interned label sequence) in this
    /// expression's language, allocation-free.
    pub fn matches_word(&self, word: &[LabelId]) -> bool {
        contained_blocks(1, |_| word, self.num_blocks(), |i| self.block(i))
    }

    /// Concatenation `self / other`, collapsing a `//` shared at the seam
    /// (exactly like [`PathExpr::concat`]).
    pub fn concat(&self, other: &CompiledExpr) -> CompiledExpr {
        let mut atoms = Vec::with_capacity(self.atoms.len() + other.atoms.len());
        atoms.extend_from_slice(&self.atoms);
        for a in &other.atoms {
            if *a == CompiledAtom::AnyPath && atoms.last() == Some(&CompiledAtom::AnyPath) {
                continue;
            }
            atoms.push(*a);
        }
        CompiledExpr::from_normalized_atoms(atoms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathExpr {
        s.parse().unwrap()
    }

    #[test]
    fn compiled_containment_matches_string_containment() {
        let exprs = [
            "ε",
            "a",
            "b",
            "a/b",
            "//",
            "//a",
            "a//",
            "//a//",
            "a//b",
            "//a/b",
            "b//a",
            "a//a",
            "//b//a",
            "a/b//a",
            "//book/chapter",
            "@x",
            "a/@x",
        ];
        let mut u = LabelUniverse::new();
        let compiled: Vec<CompiledExpr> = exprs.iter().map(|e| u.compile(&p(e))).collect();
        for (i, pe) in exprs.iter().enumerate() {
            for (j, qe) in exprs.iter().enumerate() {
                assert_eq!(
                    compiled[i].contained_in(&compiled[j]),
                    p(pe).contained_in(&p(qe)),
                    "{pe} ⊑ {qe}"
                );
            }
            assert!(compiled[i].equivalent(&compiled[i]));
        }
    }

    #[test]
    fn compiled_shape_accessors() {
        let mut u = LabelUniverse::new();
        let e = u.compile(&p("a/b//c"));
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
        assert!(!e.is_epsilon());
        assert_eq!(e.num_blocks(), 2);
        assert_eq!(e.block(0).len(), 2);
        assert_eq!(e.block(1).len(), 1);
        let eps = u.compile(&p("ε"));
        assert!(eps.is_epsilon());
        assert_eq!(eps.num_blocks(), 1);
        assert!(eps.block(0).is_empty());
    }

    #[test]
    fn compiled_word_matching() {
        let mut u = LabelUniverse::new();
        let q = u.compile(&p("//book/chapter"));
        let word = [u.intern("book"), u.intern("chapter")];
        assert!(q.matches_word(&word));
        let word2 = [u.intern("book")];
        assert!(!q.matches_word(&word2));
        assert!(u.compile(&p("//")).matches_word(&[]));
        assert!(!u.compile(&p("a")).matches_word(&[]));
    }

    #[test]
    fn compiled_concat_matches_string_concat() {
        let cases = [
            ("a//", "//b"),
            ("a", "b"),
            ("ε", "a//b"),
            ("a//b", "ε"),
            ("//", "//"),
        ];
        for (l, r) in cases {
            let mut u = LabelUniverse::new();
            let cl = u.compile(&p(l));
            let cr = u.compile(&p(r));
            let direct = u.compile(&p(l).concat(&p(r)));
            assert_eq!(cl.concat(&cr), direct, "{l} ⋅ {r}");
        }
    }

    #[test]
    fn scratch_compilation_keeps_unknown_labels_distinct() {
        let mut u = LabelUniverse::new();
        let known = u.compile(&p("a/b"));
        let mut scratch = BTreeMap::new();
        let probe = u.compile_scratch(&p("a/x"), &mut scratch);
        let probe2 = u.compile_scratch(&p("a/x"), &mut scratch);
        let other = u.compile_scratch(&p("a/y"), &mut scratch);
        // Unknown labels are consistent within one scratch map...
        assert_eq!(probe, probe2);
        // ...distinct from each other and from every interned label.
        assert_ne!(probe, other);
        assert!(!probe.contained_in(&known));
        assert!(!known.contained_in(&probe));
        assert_eq!(u.len(), 2, "scratch compilation must not intern");
        // Containment against patterns still works for unknown labels.
        let any = u.compile(&p("//"));
        assert!(probe.contained_in(&any));
    }
}
