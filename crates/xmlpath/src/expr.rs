//! Path expressions: `ε | l | P/P | P//P`.

use std::fmt;
use std::str::FromStr;

/// One atom of a path expression.
///
/// A [`PathExpr`] is a sequence of atoms; `P//Q` is represented as the atoms
/// of `P`, followed by [`Atom::AnyPath`], followed by the atoms of `Q`.
/// Consecutive `AnyPath` atoms are collapsed during normalization because
/// `//` `//` defines the same set of paths as a single `//`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Atom {
    /// A node label (element tag such as `book`, or attribute name such as
    /// `@isbn`).
    Label(String),
    /// The `//` wildcard: any path, of any length (including the empty path).
    AnyPath,
}

impl Atom {
    /// Returns the label if this atom is a label.
    pub fn as_label(&self) -> Option<&str> {
        match self {
            Atom::Label(l) => Some(l),
            Atom::AnyPath => None,
        }
    }
}

/// A path expression in the language `P ::= ε | l | P/P | P//P`.
///
/// The expression is kept in a normalized form: consecutive `//` atoms are
/// merged.  Two expressions that are syntactically different but define the
/// same normalized atom sequence compare equal; expressions that define the
/// same *language* through different atom sequences (e.g. `a//` vs `a///`)
/// are normalized to the same value, but semantically equivalent expressions
/// with different structure (there are none in this fragment beyond `//`
/// collapsing) would not.  Use [`PathExpr::equivalent`] for language
/// equivalence.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PathExpr {
    atoms: Vec<Atom>,
}

impl PathExpr {
    /// The empty path `ε`.
    pub fn epsilon() -> Self {
        PathExpr { atoms: Vec::new() }
    }

    /// A single-label path.
    pub fn label(l: impl Into<String>) -> Self {
        PathExpr {
            atoms: vec![Atom::Label(l.into())],
        }
    }

    /// The bare `//` expression (any path).
    pub fn any() -> Self {
        PathExpr {
            atoms: vec![Atom::AnyPath],
        }
    }

    /// Builds an expression from a sequence of atoms, normalizing `//` runs.
    pub fn from_atoms(atoms: impl IntoIterator<Item = Atom>) -> Self {
        let mut out: Vec<Atom> = Vec::new();
        for a in atoms {
            if a == Atom::AnyPath && out.last() == Some(&Atom::AnyPath) {
                continue;
            }
            out.push(a);
        }
        PathExpr { atoms: out }
    }

    /// Builds a `//`-free expression from a sequence of labels.
    pub fn from_labels<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        PathExpr {
            atoms: labels.into_iter().map(|l| Atom::Label(l.into())).collect(),
        }
    }

    /// The atoms of this expression, in order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// True if this is the empty path `ε`.
    pub fn is_epsilon(&self) -> bool {
        self.atoms.is_empty()
    }

    /// True if the expression contains no `//` (a *simple* path in the
    /// paper's terminology; Definition 2.2 requires variable-mapping paths to
    /// be simple unless they start from the root variable).
    pub fn is_simple(&self) -> bool {
        self.atoms.iter().all(|a| matches!(a, Atom::Label(_)))
    }

    /// True if the expression contains at least one `//`.
    pub fn has_wildcard(&self) -> bool {
        !self.is_simple()
    }

    /// The number of atoms (labels plus wildcards); used as the size measure
    /// `|P|` in complexity statements.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if the expression has no atoms (i.e. it is `ε`).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Concatenation `self / other`.
    pub fn concat(&self, other: &PathExpr) -> PathExpr {
        PathExpr::from_atoms(
            self.atoms
                .iter()
                .cloned()
                .chain(other.atoms.iter().cloned()),
        )
    }

    /// Appends a single child step.
    pub fn child(&self, label: impl Into<String>) -> PathExpr {
        self.concat(&PathExpr::label(label))
    }

    /// Appends a `//` step followed by a label (`self//label`).
    pub fn descendant(&self, label: impl Into<String>) -> PathExpr {
        self.concat(&PathExpr::any())
            .concat(&PathExpr::label(label))
    }

    /// The last atom, if any.
    pub fn last_atom(&self) -> Option<&Atom> {
        self.atoms.last()
    }

    /// All ways of writing `self` as a concatenation `A/B` of two path
    /// expressions.  This is exactly what the *target-to-context* rule for
    /// XML keys quantifies over: from a key `(Q, (A/B, S))` one may derive
    /// `(Q/A, (B, S))`.
    ///
    /// Splits are taken at every atom boundary; in addition, a `//` atom may
    /// be shared by both sides (because `A// / //B ≡ A//B`).  The trivial
    /// splits `(ε, self)` and `(self, ε)` are included.
    pub fn splits(&self) -> Vec<(PathExpr, PathExpr)> {
        let n = self.atoms.len();
        let mut out = Vec::with_capacity(n + 2);
        for i in 0..=n {
            out.push((
                PathExpr::from_atoms(self.atoms[..i].iter().cloned()),
                PathExpr::from_atoms(self.atoms[i..].iter().cloned()),
            ));
        }
        for (i, atom) in self.atoms.iter().enumerate() {
            if *atom == Atom::AnyPath {
                out.push((
                    PathExpr::from_atoms(self.atoms[..=i].iter().cloned()),
                    PathExpr::from_atoms(self.atoms[i..].iter().cloned()),
                ));
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Language containment `self ⊑ other`: every concrete path defined by
    /// `self` is also defined by `other` (regular-language containment
    /// over the path alphabet, decided without automata construction).
    pub fn contained_in(&self, other: &PathExpr) -> bool {
        crate::containment::contained_in(self, other)
    }

    /// Language equivalence (containment in both directions).
    pub fn equivalent(&self, other: &PathExpr) -> bool {
        self.contained_in(other) && other.contained_in(self)
    }

    /// Membership `ρ ∈ self` for a concrete path.
    pub fn matches(&self, path: &crate::Path) -> bool {
        crate::containment::word_matches(path.labels(), self)
    }

    /// Evaluates `n[[self]]` over a document.  See [`crate::evaluate`].
    pub fn evaluate(
        &self,
        doc: &xmlprop_xmltree::Document,
        from: xmlprop_xmltree::NodeId,
    ) -> Vec<xmlprop_xmltree::NodeId> {
        crate::evaluate(doc, from, self)
    }
}

/// Error produced when parsing a path expression from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePathError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid path expression: {}", self.message)
    }
}

impl std::error::Error for ParsePathError {}

impl FromStr for PathExpr {
    type Err = ParsePathError;

    /// Parses expressions in the syntax used throughout the paper:
    ///
    /// * `""`, `"ε"`, `"."` — the empty path;
    /// * `"//book"` — a leading `//`;
    /// * `"author/contact"`, `"//book/chapter/@number"` — `/`-separated
    ///   steps, `//` for descendant-or-self;
    /// * a single leading `/` (as in absolute XPath) is accepted and ignored.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "ε" || s == "." {
            return Ok(PathExpr::epsilon());
        }
        let mut atoms = Vec::new();
        let bytes = s.as_bytes();
        let mut i = 0usize;
        // A single leading '/' that is not part of '//' marks an absolute
        // path; it carries no atom.
        if bytes[0] == b'/' && (bytes.len() < 2 || bytes[1] != b'/') {
            i = 1;
        }
        while i < bytes.len() {
            if bytes[i] == b'/' {
                if i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    atoms.push(Atom::AnyPath);
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            let start = i;
            while i < bytes.len() && bytes[i] != b'/' {
                i += 1;
            }
            let label = &s[start..i];
            if label.chars().any(char::is_whitespace) {
                return Err(ParsePathError {
                    message: format!("label `{label}` contains whitespace"),
                });
            }
            atoms.push(Atom::Label(label.to_string()));
        }
        Ok(PathExpr::from_atoms(atoms))
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "ε");
        }
        let mut prev_was_label = false;
        for atom in &self.atoms {
            match atom {
                Atom::AnyPath => {
                    write!(f, "//")?;
                    prev_was_label = false;
                }
                Atom::Label(l) => {
                    if prev_was_label {
                        write!(f, "/")?;
                    }
                    write!(f, "{l}")?;
                    prev_was_label = true;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathExpr {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in [
            "ε",
            "//book",
            "book/chapter",
            "//book/chapter/@number",
            "a//b//c",
            "//",
        ] {
            let expr = p(s);
            assert_eq!(expr.to_string(), s, "display of parse of {s}");
            assert_eq!(p(&expr.to_string()), expr);
        }
    }

    #[test]
    fn parse_variants_of_epsilon() {
        assert!(p("").is_epsilon());
        assert!(p("ε").is_epsilon());
        assert!(p(".").is_epsilon());
        assert!(p("  ").is_epsilon());
    }

    #[test]
    fn leading_single_slash_is_ignored() {
        assert_eq!(p("/book/title"), p("book/title"));
    }

    #[test]
    fn consecutive_wildcards_collapse() {
        assert_eq!(p("a////b"), p("a//b"));
        assert_eq!(PathExpr::any().concat(&PathExpr::any()), PathExpr::any());
    }

    #[test]
    fn rejects_whitespace_in_labels() {
        assert!("a b/c".parse::<PathExpr>().is_err());
    }

    #[test]
    fn parse_errors_name_the_offending_label() {
        let err = "x/a b".parse::<PathExpr>().unwrap_err();
        assert!(err.message.contains("a b"), "unhelpful message: {err}");
        assert!(err.to_string().contains("invalid path expression"));
        // Interior whitespace anywhere in a label is rejected; surrounding
        // whitespace on the whole expression is trimmed and fine.
        assert!("a\tb".parse::<PathExpr>().is_err());
        assert!("  a/b  ".parse::<PathExpr>().is_ok());
    }

    #[test]
    fn parse_edge_cases_of_slashes() {
        // Trailing and repeated separators normalize rather than error.
        assert_eq!(p("a/"), p("a"));
        assert_eq!(p("a//"), PathExpr::label("a").concat(&PathExpr::any()));
        assert_eq!(p("///a"), p("//a")); // absolute marker + wildcard
        assert_eq!(p("////"), p("//"));
        assert_eq!(p("/"), PathExpr::epsilon());
    }

    #[test]
    fn simple_and_wildcard_predicates() {
        assert!(p("book/chapter").is_simple());
        assert!(!p("//book").is_simple());
        assert!(p("//book").has_wildcard());
        assert!(p("ε").is_simple());
    }

    #[test]
    fn concat_and_builders() {
        let q = PathExpr::epsilon()
            .descendant("book")
            .child("chapter")
            .child("@number");
        assert_eq!(q, p("//book/chapter/@number"));
        assert_eq!(p("a/b").concat(&p("c")), p("a/b/c"));
        assert_eq!(p("a//").concat(&p("//b")), p("a//b"));
        assert_eq!(p("a").concat(&PathExpr::epsilon()), p("a"));
    }

    #[test]
    fn splits_cover_all_decompositions() {
        let e = p("a//b");
        let splits = e.splits();
        // Expected decompositions of a//b into two concatenated expressions.
        let expect = [
            ("ε", "a//b"),
            ("a", "//b"),
            ("a//", "b"),
            ("a//b", "ε"),
            ("a//", "//b"), // wildcard shared by both sides
        ];
        for (l, r) in expect {
            assert!(
                splits.contains(&(p(l), p(r))),
                "missing split ({l}, {r}) in {splits:?}"
            );
        }
        // Every split must re-concatenate to the original expression.
        for (l, r) in &splits {
            assert_eq!(l.concat(r), e);
        }
    }

    #[test]
    fn splits_of_epsilon() {
        assert_eq!(
            PathExpr::epsilon().splits(),
            vec![(PathExpr::epsilon(), PathExpr::epsilon())]
        );
    }

    #[test]
    fn len_counts_atoms() {
        assert_eq!(p("ε").len(), 0);
        assert_eq!(p("//book/chapter").len(), 3);
        assert!(p("ε").is_empty());
    }
}
