//! Language containment for the path fragment `ε | l | P/P | P//P`.
//!
//! A path expression denotes a set of concrete paths (words over the
//! infinite alphabet of node labels), with `//` denoting "any path"
//! (`Σ*`).  Containment `P ⊑ Q` asks whether every word of `P` is a word of
//! `Q`.  Both XML key implication (Section 4 of the paper) and the `exist`
//! sub-procedure of Algorithm `propagation` reduce to this test, so it must
//! be exact and fast.
//!
//! # Algorithm
//!
//! Normalize both expressions into *blocks*: maximal label runs separated by
//! `//` gaps, i.e. `P = w0 // w1 // … // wk`.  Because the label alphabet is
//! unbounded, a gap of `P` can always be instantiated with arbitrarily many
//! labels that occur nowhere in `Q`; this forces the following
//! characterisation (k = number of gaps in `P`, m = number of gaps in `Q`,
//! `v0..vm` the blocks of `Q`):
//!
//! * `m = 0` (Q is a single fixed word): containment holds iff `k = 0` and
//!   `w0 = v0`.
//! * `k = 0` (P is a single fixed word): containment is ordinary wildcard
//!   matching of the word `w0` against the pattern `Q`: `v0` must be a
//!   prefix, `vm` a suffix (without overlapping), and the middle blocks must
//!   occur in order, disjointly, in between — greedy leftmost matching is
//!   complete here.
//! * `k ≥ 1, m ≥ 1`: `v0` must be a prefix of `w0`, `vm` a suffix of `wk`,
//!   and the middle blocks `v1..v(m-1)` must occur, in order and without
//!   crossing a gap of `P`, inside the remaining literal material
//!   `w0[|v0|..], w1, …, wk[..len-|vm|]` — again greedy matching is
//!   complete.
//!
//! Soundness and completeness of the greedy step follow from the standard
//! exchange argument for pattern matching with `*` wildcards; the
//! `greedy_matching_is_complete` property test below pins both directions
//! against a brute-force word enumerator.
//!
//! The decision procedure itself is written once, generically over the label
//! token type ([`contained_blocks`]): the `String`-based entry points below
//! run it over `&str` blocks split on the fly, while
//! [`crate::CompiledExpr`] runs the same code over precomputed
//! [`crate::LabelId`] blocks with no per-call allocation at all.

use crate::expr::{Atom, PathExpr};

/// Splits an expression into its literal blocks (label runs between `//`s).
/// An expression with `g` gaps yields exactly `g + 1` blocks.
fn blocks(expr: &PathExpr) -> Vec<Vec<&str>> {
    let mut out: Vec<Vec<&str>> = vec![Vec::new()];
    for atom in expr.atoms() {
        match atom {
            Atom::Label(l) => out.last_mut().expect("at least one block").push(l.as_str()),
            Atom::AnyPath => out.push(Vec::new()),
        }
    }
    out
}

/// Finds the first occurrence of `needle` as a contiguous factor of
/// `haystack` starting at or after `from`; returns the index just past the
/// match.
fn find_factor<T: PartialEq>(haystack: &[T], needle: &[T], from: usize) -> Option<usize> {
    if needle.is_empty() {
        return Some(from.min(haystack.len()));
    }
    if haystack.len() < needle.len() {
        return None;
    }
    let last_start = haystack.len() - needle.len();
    (from..=last_start)
        .find(|&start| &haystack[start..start + needle.len()] == needle)
        .map(|start| start + needle.len())
}

/// Greedily places the needles `needle(i)` for `i ∈ needles` (in order,
/// disjointly) into the segments `seg(0) … seg(nseg - 1)`, never letting a
/// needle span two segments.  Segments are scanned left to right.
fn place_blocks<'a, T, S, N>(
    nseg: usize,
    seg: S,
    needles: std::ops::Range<usize>,
    needle: &N,
) -> bool
where
    T: PartialEq + 'a,
    S: Fn(usize) -> &'a [T],
    N: Fn(usize) -> &'a [T],
{
    let mut si = 0usize;
    let mut offset = 0usize;
    'next_needle: for ni in needles {
        let nd = needle(ni);
        while si < nseg {
            if let Some(end) = find_factor(seg(si), nd, offset) {
                offset = end;
                continue 'next_needle;
            }
            si += 1;
            offset = 0;
        }
        return false;
    }
    true
}

/// Containment `p ⊑ q` over block decompositions, generic in the label token
/// type: `p`/`q` yield the `np`/`nq` blocks of each expression (an
/// expression with `g` gaps has `g + 1` blocks).  This is the whole decision
/// procedure; it allocates nothing, so callers that precompute their blocks
/// (the compiled layer) pay only the comparisons.
pub(crate) fn contained_blocks<'a, T, P, Q>(np: usize, p: P, nq: usize, q: Q) -> bool
where
    T: PartialEq + 'a,
    P: Fn(usize) -> &'a [T],
    Q: Fn(usize) -> &'a [T],
{
    if nq == 1 {
        // Q denotes a single word.
        return np == 1 && p(0) == q(0);
    }

    let v0 = q(0);
    let vm = q(nq - 1);
    let middles = 1..nq - 1;

    if np == 1 {
        // P is a single word w0; match it against the pattern Q.
        let w0 = p(0);
        if w0.len() < v0.len() + vm.len() {
            return false;
        }
        if &w0[..v0.len()] != v0 || &w0[w0.len() - vm.len()..] != vm {
            return false;
        }
        let interior = &w0[v0.len()..w0.len() - vm.len()];
        return place_blocks(1, |_| interior, middles, &q);
    }

    // Both have gaps. Anchor v0 at the start of w0 and vm at the end of wk;
    // since `np ≥ 2` the anchors live in different blocks and cannot overlap.
    let w0 = p(0);
    let wk = p(np - 1);
    if w0.len() < v0.len() || &w0[..v0.len()] != v0 {
        return false;
    }
    if wk.len() < vm.len() || &wk[wk.len() - vm.len()..] != vm {
        return false;
    }
    // Remaining literal material of P, in order; middle blocks of Q must be
    // placed inside it without crossing gap boundaries.
    place_blocks(
        np,
        |i| {
            let b = p(i);
            let lo = if i == 0 { v0.len() } else { 0 };
            let hi = if i + 1 == np {
                b.len() - vm.len()
            } else {
                b.len()
            };
            &b[lo..hi]
        },
        middles,
        &q,
    )
}

/// Containment `p ⊑ q` of path-expression languages.
pub fn contained_in(p: &PathExpr, q: &PathExpr) -> bool {
    let pb = blocks(p);
    let qb = blocks(q);
    contained_blocks(
        pb.len(),
        |i| pb[i].as_slice(),
        qb.len(),
        |i| qb[i].as_slice(),
    )
}

/// Membership of a concrete word (label sequence) in the language of `q`:
/// the word is a single gap-free block, matched directly against `q`'s
/// blocks (no throwaway [`PathExpr`] is built).
pub fn word_matches(word: &[String], q: &PathExpr) -> bool {
    let word: Vec<&str> = word.iter().map(String::as_str).collect();
    let qb = blocks(q);
    contained_blocks(1, |_| word.as_slice(), qb.len(), |i| qb[i].as_slice())
}

/// The pre-refactor decision procedure (allocating `Vec<Vec<&str>>` segments
/// per call), kept verbatim as the reference oracle that pins the generic
/// zero-allocation core and the compiled layer.
#[cfg(test)]
pub(crate) mod oracle {
    use super::*;

    fn blocks_with_gaps(expr: &PathExpr) -> (Vec<Vec<&str>>, usize) {
        let mut out: Vec<Vec<&str>> = vec![Vec::new()];
        let mut gaps = 0usize;
        for atom in expr.atoms() {
            match atom {
                Atom::Label(l) => out.last_mut().expect("at least one block").push(l.as_str()),
                Atom::AnyPath => {
                    gaps += 1;
                    out.push(Vec::new());
                }
            }
        }
        (out, gaps)
    }

    fn place_blocks(segments: &[Vec<&str>], needles: &[Vec<&str>]) -> bool {
        let mut seg = 0usize;
        let mut offset = 0usize;
        'next_needle: for needle in needles {
            while seg < segments.len() {
                if let Some(end) = find_factor(&segments[seg], needle, offset) {
                    offset = end;
                    continue 'next_needle;
                }
                seg += 1;
                offset = 0;
            }
            return false;
        }
        true
    }

    /// `contained_in` as originally written.
    pub fn contained_in(p: &PathExpr, q: &PathExpr) -> bool {
        let (p_blocks, p_gaps) = blocks_with_gaps(p);
        let (q_blocks, q_gaps) = blocks_with_gaps(q);

        if q_gaps == 0 {
            return p_gaps == 0 && p_blocks[0] == q_blocks[0];
        }

        let v0 = &q_blocks[0];
        let vm = &q_blocks[q_blocks.len() - 1];
        let middles = &q_blocks[1..q_blocks.len() - 1];

        if p_gaps == 0 {
            let w0 = &p_blocks[0];
            if w0.len() < v0.len() + vm.len() {
                return false;
            }
            if &w0[..v0.len()] != v0.as_slice() || &w0[w0.len() - vm.len()..] != vm.as_slice() {
                return false;
            }
            let interior = vec![w0[v0.len()..w0.len() - vm.len()].to_vec()];
            return place_blocks(&interior, middles);
        }

        let w0 = &p_blocks[0];
        let wk = &p_blocks[p_blocks.len() - 1];
        if w0.len() < v0.len() || &w0[..v0.len()] != v0.as_slice() {
            return false;
        }
        if wk.len() < vm.len() || &wk[wk.len() - vm.len()..] != vm.as_slice() {
            return false;
        }
        let mut segments: Vec<Vec<&str>> = Vec::with_capacity(p_blocks.len());
        segments.push(w0[v0.len()..].to_vec());
        for b in &p_blocks[1..p_blocks.len() - 1] {
            segments.push(b.clone());
        }
        segments.push(wk[..wk.len() - vm.len()].to_vec());
        place_blocks(&segments, middles)
    }

    /// `word_matches` as originally written: via a throwaway [`PathExpr`].
    pub fn word_matches(word: &[String], q: &PathExpr) -> bool {
        let as_expr = PathExpr::from_labels(word.iter().cloned());
        contained_in(&as_expr, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathExpr {
        s.parse().unwrap()
    }

    #[track_caller]
    fn assert_cont(a: &str, b: &str, expect: bool) {
        assert_eq!(
            contained_in(&p(a), &p(b)),
            expect,
            "{a} ⊑ {b} should be {expect}"
        );
        assert_eq!(
            oracle::contained_in(&p(a), &p(b)),
            expect,
            "oracle: {a} ⊑ {b} should be {expect}"
        );
    }

    #[test]
    fn fixed_words() {
        assert_cont("a/b/c", "a/b/c", true);
        assert_cont("a/b", "a/b/c", false);
        assert_cont("a/b/c", "a/b", false);
        assert_cont("ε", "ε", true);
        assert_cont("a", "ε", false);
        assert_cont("ε", "a", false);
    }

    #[test]
    fn word_in_pattern() {
        assert_cont("book/chapter", "//chapter", true);
        assert_cont("book/chapter", "//book", false);
        assert_cont("book/chapter/section", "book//section", true);
        assert_cont("book/section", "book//section", true); // `//` matches ε
        assert_cont("book/chapter/section", "//chapter//", true);
        assert_cont("a/x/b/y/c", "a//b//c", true);
        assert_cont("a/y/c", "a//b//c", false);
        assert_cont("ε", "//", true);
        assert_cont("a", "//", true);
    }

    #[test]
    fn pattern_in_fixed_word_only_if_equal_and_gap_free() {
        assert_cont("//a", "a", false);
        assert_cont("a//", "a", false);
        assert_cont("a", "a", true);
    }

    #[test]
    fn pattern_in_pattern() {
        assert_cont("//book/chapter", "//chapter", true);
        assert_cont("//chapter", "//book/chapter", false);
        assert_cont("//book/chapter", "//", true);
        assert_cont("//", "//book", false);
        assert_cont("a//b", "a//b", true);
        assert_cont("a/x//b", "a//b", true);
        assert_cont("a//x/b", "a//b", true);
        assert_cont("a//b", "a/x//b", false);
        assert_cont("a//b//c", "a//c", true);
        assert_cont("a//c", "a//b//c", false);
        assert_cont("//book//", "//", true);
        assert_cont("//", "//book//", false);
    }

    #[test]
    fn middle_blocks_must_respect_gaps() {
        // Every word of a//c contains no guaranteed `b`, so it cannot be
        // contained in //b//.
        assert_cont("a//c", "//b//", false);
        // But a//b/c ⊑ //b// since b literally occurs in every word.
        assert_cont("a//b/c", "//b//", true);
        // A middle block may not span a gap of P: every word of a//b has a
        // potential junk segment between a and b, so //a/b// does not cover.
        assert_cont("a//b", "//a/b//", false);
        assert_cont("a/b//x", "//a/b//", true);
    }

    #[test]
    fn anchors_are_required() {
        assert_cont("b//c", "a//c", false); // prefix mismatch
        assert_cont("a/b//c", "a//c", true);
        assert_cont("a//b", "a//c", false); // suffix mismatch
        assert_cont("a//c/b", "a//b", true);
    }

    #[test]
    fn anchors_may_abut_but_not_overlap() {
        // Q's prefix and suffix anchors together are longer than any fixed
        // word of P can afford.
        assert_cont("a", "a//a", false);
        assert_cont("a/a", "a//a", true);
        assert_cont("a/b/a", "a/b//b/a", false); // anchors would overlap on b
        assert_cont("a/b/b/a", "a/b//b/a", true); // they may abut exactly
                                                  // With gaps on both sides the anchors live in different blocks.
        assert_cont("a//a", "a//a", true);
        assert_cont("a/b//b/a", "a/b//b/a", true);
    }

    #[test]
    fn empty_blocks_and_wildcard_only_expressions() {
        // `//`-only expressions: every block is empty.
        assert_cont("//", "//", true);
        assert_cont("a//b", "//", true);
        // Leading/trailing gaps produce empty first/last blocks; the anchors
        // are then vacuous.
        assert_cont("//a//", "//", true);
        assert_cont("//", "//a//", false);
        assert_cont("//a", "//a//", true);
        assert_cont("a//", "//a//", true);
        assert_cont("//a//", "//a", false);
        assert_cont("//a//", "a//", false);
    }

    #[test]
    fn paper_examples() {
        // Section 2: book/chapter ∈ //chapter and //book/chapter.
        assert!(word_matches(
            &["book".to_string(), "chapter".to_string()],
            &p("//chapter")
        ));
        assert!(word_matches(
            &["book".to_string(), "chapter".to_string()],
            &p("//book/chapter")
        ));
        // exist() in Example 4.2: //book ⊑ ε-concat-//book.
        assert_cont("//book", "//book", true);
        // Transitive-key reasoning: //book/chapter ⊑ //book / chapter.
        assert_cont("//book/chapter", "//chapter", true);
    }

    #[test]
    fn equivalence_and_reflexivity() {
        for s in ["ε", "a", "//", "//book/chapter", "a//b//c"] {
            assert_cont(s, s, true);
        }
        assert!(p("a////b").equivalent(&p("a//b")));
        assert!(!p("a//b").equivalent(&p("a/b")));
    }

    #[test]
    fn word_matches_agrees_with_oracle() {
        let words: &[&[&str]] = &[
            &[],
            &["a"],
            &["book"],
            &["book", "chapter"],
            &["a", "b", "a"],
        ];
        for q in ["ε", "//", "a", "//a", "a//b", "//book/chapter", "//a//"] {
            let q = p(q);
            for w in words {
                let w: Vec<String> = w.iter().map(|s| s.to_string()).collect();
                assert_eq!(
                    word_matches(&w, &q),
                    oracle::word_matches(&w, &q),
                    "word {w:?} vs {q}"
                );
            }
        }
    }

    #[test]
    fn brute_force_cross_check() {
        // Enumerate all words up to length 3 over a 2-letter alphabet and
        // compare membership-based containment against the decision
        // procedure, for a small universe of expressions.
        let alphabet = ["a", "b"];
        let mut words: Vec<Vec<String>> = vec![vec![]];
        for len in 1..=3usize {
            let mut level: Vec<Vec<String>> = vec![vec![]];
            for _ in 0..len {
                let mut next = Vec::new();
                for w in &level {
                    for l in alphabet {
                        let mut w2 = w.clone();
                        w2.push(l.to_string());
                        next.push(w2);
                    }
                }
                level = next;
            }
            words.extend(level);
        }
        let exprs = [
            "ε", "a", "b", "a/b", "//", "//a", "a//", "//a//", "a//b", "//a/b", "b//a", "a//a",
            "//b//a", "a/b//a",
        ];
        for pe in exprs {
            for qe in exprs {
                let pexpr = p(pe);
                let qexpr = p(qe);
                let decided = contained_in(&pexpr, &qexpr);
                // Sampled containment: every enumerated word of P must be in Q.
                if decided {
                    for w in &words {
                        if word_matches(w, &pexpr) {
                            assert!(
                                word_matches(w, &qexpr),
                                "{pe} ⊑ {qe} claimed, but word {w:?} is a counterexample"
                            );
                        }
                    }
                }
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random path expressions over a two-letter alphabet plus `//`.
        fn expr_strategy() -> impl Strategy<Value = PathExpr> {
            prop::collection::vec(
                prop_oneof![
                    Just(Atom::Label("a".to_string())),
                    Just(Atom::Label("b".to_string())),
                    Just(Atom::AnyPath),
                ],
                0..5,
            )
            .prop_map(PathExpr::from_atoms)
        }

        /// All words over `alphabet` up to length `max_len`.
        fn all_words(alphabet: &[&str], max_len: usize) -> Vec<Vec<String>> {
            let mut out: Vec<Vec<String>> = vec![vec![]];
            let mut level: Vec<Vec<String>> = vec![vec![]];
            for _ in 0..max_len {
                let mut next = Vec::new();
                for w in &level {
                    for l in alphabet {
                        let mut w2 = w.clone();
                        w2.push(l.to_string());
                        next.push(w2);
                    }
                }
                out.extend(next.iter().cloned());
                level = next;
            }
            out
        }

        proptest! {
            /// The refactored generic core agrees with the original
            /// implementation on random expression pairs.
            #[test]
            fn generic_core_matches_oracle(
                p in expr_strategy(),
                q in expr_strategy(),
            ) {
                prop_assert_eq!(contained_in(&p, &q), oracle::contained_in(&p, &q));
            }

            /// Direct word matching agrees with the throwaway-expression
            /// oracle on random words and patterns.
            #[test]
            fn word_matching_matches_oracle(
                w in prop::collection::vec(
                    prop_oneof![Just("a".to_string()), Just("b".to_string())], 0..6),
                q in expr_strategy(),
            ) {
                prop_assert_eq!(word_matches(&w, &q), oracle::word_matches(&w, &q));
            }

            /// The greedy-matching claims of the module docs, pinned against
            /// a brute-force word enumerator: containment holds iff every
            /// word of P (over the expressions' alphabet plus a fresh letter
            /// instantiating the gaps) is a word of Q.  Since the generated
            /// expressions have at most 4 atoms, every non-containment has a
            /// witness within the enumerated length bound.
            #[test]
            fn greedy_matching_is_complete(
                p in expr_strategy(),
                q in expr_strategy(),
            ) {
                let words = all_words(&["a", "b", "z"], 6);
                let decided = contained_in(&p, &q);
                let sampled = words
                    .iter()
                    .filter(|w| word_matches(w, &p))
                    .all(|w| word_matches(w, &q));
                prop_assert_eq!(
                    decided, sampled,
                    "decision {} for {} ⊑ {} but enumeration says {}",
                    decided, p, q, sampled
                );
            }
        }
    }
}
