//! Concrete paths (sequences of labels).

use crate::PathExpr;
use std::fmt;

/// A concrete path: a (possibly empty) sequence of node labels, such as
/// `book/chapter/@number`.  Concrete paths are the *words* of the language
/// defined by a [`PathExpr`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Path {
    labels: Vec<String>,
}

impl Path {
    /// The empty path.
    pub fn empty() -> Self {
        Path { labels: Vec::new() }
    }

    /// Builds a path from a sequence of labels.
    pub fn from_labels<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Path {
            labels: labels.into_iter().map(Into::into).collect(),
        }
    }

    /// The labels of the path.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The number of labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the path is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Appends a label, returning the longer path.
    pub fn child(&self, label: impl Into<String>) -> Path {
        let mut labels = self.labels.clone();
        labels.push(label.into());
        Path { labels }
    }

    /// Concatenates two concrete paths.
    pub fn concat(&self, other: &Path) -> Path {
        Path {
            labels: self
                .labels
                .iter()
                .cloned()
                .chain(other.labels.iter().cloned())
                .collect(),
        }
    }

    /// Membership `self ∈ expr`.
    pub fn matches(&self, expr: &PathExpr) -> bool {
        expr.matches(self)
    }

    /// Converts the concrete path into the (wildcard-free) path expression
    /// defining exactly this path.
    pub fn to_expr(&self) -> PathExpr {
        PathExpr::from_labels(self.labels.iter().cloned())
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            write!(f, "ε")
        } else {
            write!(f, "{}", self.labels.join("/"))
        }
    }
}

impl From<Vec<String>> for Path {
    fn from(labels: Vec<String>) -> Self {
        Path { labels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let p = Path::from_labels(["book", "chapter", "@number"]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.to_string(), "book/chapter/@number");
        assert_eq!(Path::empty().to_string(), "ε");
        assert!(Path::empty().is_empty());
    }

    #[test]
    fn child_and_concat() {
        let p = Path::empty().child("book").child("title");
        assert_eq!(p, Path::from_labels(["book", "title"]));
        let q = Path::from_labels(["a"]).concat(&Path::from_labels(["b", "c"]));
        assert_eq!(q, Path::from_labels(["a", "b", "c"]));
    }

    #[test]
    fn to_expr_matches_itself() {
        let p = Path::from_labels(["book", "chapter"]);
        assert!(p.matches(&p.to_expr()));
        assert!(!Path::from_labels(["book"]).matches(&p.to_expr()));
    }

    #[test]
    fn membership_example_from_paper() {
        // Section 2: book/chapter ∈ //chapter — wait, the paper's example is
        // chapter/section ∈ //section and book/chapter ∈ //chapter.
        let rho = Path::from_labels(["book", "chapter"]);
        let anywhere_chapter: PathExpr = "//chapter".parse().unwrap();
        assert!(rho.matches(&anywhere_chapter));
        let only_chapter: PathExpr = "chapter".parse().unwrap();
        assert!(!rho.matches(&only_chapter));
    }
}
