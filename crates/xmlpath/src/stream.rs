//! Incremental word matching for the streaming front end.
//!
//! The DOM evaluator ([`crate::evaluate`] and the compiled
//! [`CompiledExpr::evaluate`]) answers `n[[P]]` with the whole label word in
//! hand.  The streaming shredder and key checker instead descend the
//! document one label at a time and need, at every open node, the answer to
//! "could the path from the binding root to here (or below) still match
//! `P`?" — a classic NFA simulation.
//!
//! [`StreamMatcher`] compiles a [`CompiledExpr`] into exactly that: a
//! Thompson-style NFA whose states are positions between atoms, carried in a
//! single `u128` bitmask ([`MatchState`]).  Position `i` means "a prefix of
//! the word has matched `atoms[..i]`"; position `len(atoms)` is the accept
//! state.  `//` atoms contribute a self-loop (consume any label) plus an
//! ε-edge (consume nothing), which is closed eagerly so a state is always
//! ε-closed.
//!
//! Matching agrees with [`CompiledExpr::matches_word`] label for label — a
//! property pinned by proptest-style exhaustive tests below — and one
//! `step` is a couple of bit operations per atom, allocation-free, so the
//! per-event cost of the streaming path stays flat.

use crate::compile::{CompiledAtom, CompiledExpr};
use xmlprop_xmltree::LabelId;

/// The NFA state set of one in-progress match, as a position bitmask.
///
/// Obtained from [`StreamMatcher::start`] and advanced with
/// [`StreamMatcher::step`]; `Copy`, so open-binding frontiers can stack
/// them per document depth without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatchState(u128);

impl MatchState {
    /// True if no NFA position is live: no extension of the consumed word
    /// can ever match, so the subtree below can be skipped.
    pub fn is_dead(self) -> bool {
        self.0 == 0
    }
}

/// A compiled path expression in NFA form, for label-at-a-time matching.
///
/// # Example
///
/// ```
/// use xmlprop_xmlpath::{PathCompiler, LabelUniverse, StreamMatcher};
///
/// let mut u = LabelUniverse::new();
/// let expr = u.compile(&"//book/chapter".parse().unwrap());
/// let matcher = StreamMatcher::new(&expr);
///
/// let mut state = matcher.start();
/// assert!(!matcher.accepts(state));
/// state = matcher.step(state, u.lookup("book"));
/// state = matcher.step(state, u.lookup("chapter"));
/// assert!(matcher.accepts(state));
/// ```
#[derive(Debug, Clone)]
pub struct StreamMatcher {
    /// Positions whose atom is `Label(l)`, indexed by `l`'s raw id; labels
    /// past the table (or `None`) have no consuming positions.  The masks
    /// are dense in the label id space, which the interner keeps small.
    label_masks: Vec<u128>,
    /// Positions whose atom is `//` (self-loop on every label).
    any_mask: u128,
    /// The accept position, `1 << atoms.len()`.
    accept_mask: u128,
    /// `Label(l)` positions whose consumption lands in the accept closure:
    /// a state overlapping this mask accepts after consuming that label.
    label_accept: u128,
    /// `//` positions inside the accept closure: a state overlapping this
    /// mask accepts after consuming *any* label.
    any_accept: u128,
    /// The label consumed at each `Label` position (placeholder for `//`).
    atom_labels: Vec<LabelId>,
    start: MatchState,
}

impl StreamMatcher {
    /// Compiles `expr` into NFA form.
    ///
    /// # Panics
    ///
    /// Panics if `expr` has 128 or more atoms (the state set is a `u128`
    /// bitmask over `len + 1` positions).  Paper-style path expressions are
    /// a handful of atoms; the limit exists only to keep states `Copy`.
    pub fn new(expr: &CompiledExpr) -> Self {
        let atoms = expr.atoms();
        assert!(
            atoms.len() < 128,
            "StreamMatcher supports at most 127 atoms, got {}",
            atoms.len()
        );
        let mut any_mask = 0u128;
        let mut max_label = 0usize;
        for atom in atoms {
            match atom {
                CompiledAtom::Label(l) => max_label = max_label.max(l.index() + 1),
                CompiledAtom::AnyPath => {}
            }
        }
        let mut label_masks = vec![0u128; max_label];
        for (i, atom) in atoms.iter().enumerate() {
            match atom {
                CompiledAtom::Label(l) => label_masks[l.index()] |= 1u128 << i,
                CompiledAtom::AnyPath => any_mask |= 1u128 << i,
            }
        }
        let atom_labels: Vec<LabelId> = atoms
            .iter()
            .map(|atom| match atom {
                CompiledAtom::Label(l) => *l,
                CompiledAtom::AnyPath => LabelId(u32::MAX),
            })
            .collect();
        let mut matcher = StreamMatcher {
            label_masks,
            any_mask,
            accept_mask: 1u128 << atoms.len(),
            label_accept: 0,
            any_accept: 0,
            atom_labels,
            start: MatchState(0),
        };
        matcher.start = matcher.close(MatchState(1));
        for (i, atom) in atoms.iter().enumerate() {
            match atom {
                CompiledAtom::Label(_) => {
                    if matcher.close(MatchState(1u128 << (i + 1))).0 & matcher.accept_mask != 0 {
                        matcher.label_accept |= 1u128 << i;
                    }
                }
                CompiledAtom::AnyPath => {
                    if matcher.close(MatchState(1u128 << i)).0 & matcher.accept_mask != 0 {
                        matcher.any_accept |= 1u128 << i;
                    }
                }
            }
        }
        matcher
    }

    /// The initial state: the empty word has been consumed.
    #[inline]
    pub fn start(&self) -> MatchState {
        self.start
    }

    /// True if the word consumed to reach `state` is in the language.
    #[inline]
    pub fn accepts(&self, state: MatchState) -> bool {
        state.0 & self.accept_mask != 0
    }

    /// True if some position's atom can consume `label` from *some* state —
    /// a static property of the expression, independent of the current
    /// state.  When false, every [`step`](Self::step) on `label` maps every
    /// state to the dead state's closure, so callers batching many matchers
    /// per event (the streaming shredder's leaf scans) can skip this one.
    #[inline]
    pub fn can_consume(&self, label: Option<LabelId>) -> bool {
        match label {
            Some(l) => {
                self.any_mask != 0 || self.label_masks.get(l.index()).copied().unwrap_or(0) != 0
            }
            None => self.any_mask != 0,
        }
    }

    /// True if `state` accepts after consuming *any* label (a `//` atom
    /// carries it into the accept closure): `accepts(step(state, l))` holds
    /// for every `l`, including labels outside the universe.
    #[inline]
    pub fn accepts_any_label(&self, state: MatchState) -> bool {
        state.0 & self.any_accept != 0
    }

    /// Calls `f` with each distinct label `l` for which
    /// `accepts(step(state, Some(l)))` holds — **unless**
    /// [`accepts_any_label`](Self::accepts_any_label) is true, in which
    /// case every label accepts and the per-label enumeration is moot.
    /// Path expressions are single atom chains, so at most one position's
    /// label can land in the accept closure and `f` runs at most once.
    #[inline]
    pub fn for_each_accepting_label(&self, state: MatchState, mut f: impl FnMut(LabelId)) {
        let mut bits = state.0 & self.label_accept;
        while bits != 0 {
            let p = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            f(self.atom_labels[p]);
        }
    }

    /// Advances `state` by one label.  `None` (a label absent from the
    /// universe) can only be consumed by `//` — it never equals an interned
    /// label, mirroring the DOM evaluator's unknown-label semantics.
    #[inline]
    pub fn step(&self, state: MatchState, label: Option<LabelId>) -> MatchState {
        let consuming = match label {
            Some(l) => self.label_masks.get(l.index()).copied().unwrap_or_default(),
            None => 0,
        };
        // `Label(l)` positions advance by one; `//` positions self-loop.
        let out = ((state.0 & consuming) << 1) | (state.0 & self.any_mask);
        self.close(MatchState(out))
    }

    /// ε-closure: a live `//` position also reaches the position after it.
    /// ε-edges only ever point forward, so runs of consecutive `//` atoms
    /// converge in as many rounds as the longest run — one for typical
    /// paths.
    #[inline]
    fn close(&self, state: MatchState) -> MatchState {
        let mut mask = state.0;
        loop {
            let grown = mask | ((mask & self.any_mask) << 1);
            if grown == mask {
                return MatchState(mask);
            }
            mask = grown;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::PathCompiler;
    use crate::expr::PathExpr;
    use xmlprop_xmltree::LabelUniverse;

    fn p(s: &str) -> PathExpr {
        s.parse().unwrap()
    }

    fn stream_matches(matcher: &StreamMatcher, word: &[LabelId]) -> bool {
        let mut state = matcher.start();
        for &l in word {
            state = matcher.step(state, Some(l));
        }
        matcher.accepts(state)
    }

    #[test]
    fn agrees_with_matches_word_exhaustively() {
        let exprs = [
            "ε", "a", "b", "a/b", "//", "//a", "a//", "//a//", "a//b", "//a/b", "b//a", "a//a",
            "//b//a", "a/b//a", "a/b/a", "//a//b//", "a/@x", "//@x",
        ];
        let mut u = LabelUniverse::new();
        let labels = [u.intern("a"), u.intern("b"), u.intern("@x")];
        for expr in exprs {
            let compiled = u.compile(&p(expr));
            let matcher = StreamMatcher::new(&compiled);
            // All words over {a, b, @x} up to length 4.
            let mut words: Vec<Vec<LabelId>> = vec![Vec::new()];
            let mut frontier = words.clone();
            for _ in 0..4 {
                let mut next = Vec::new();
                for w in &frontier {
                    for &l in &labels {
                        let mut w2 = w.clone();
                        w2.push(l);
                        next.push(w2);
                    }
                }
                words.extend(next.iter().cloned());
                frontier = next;
            }
            for word in &words {
                assert_eq!(
                    stream_matches(&matcher, word),
                    compiled.matches_word(word),
                    "{expr} vs {word:?}"
                );
            }
        }
    }

    #[test]
    fn accepting_label_enumeration_agrees_with_stepping() {
        let exprs = [
            "ε", "a", "b", "a/b", "//", "//a", "a//", "//a//", "a//b", "//a/b", "b//a", "a//a",
            "//b//a", "a/b//a", "a/b/a", "//a//b//", "a/@x", "//@x",
        ];
        let mut u = LabelUniverse::new();
        let labels = [u.intern("a"), u.intern("b"), u.intern("@x")];
        for expr in exprs {
            let compiled = u.compile(&p(expr));
            let matcher = StreamMatcher::new(&compiled);
            // Every state reachable by a word of length <= 3.
            let mut states = vec![matcher.start()];
            let mut frontier = states.clone();
            for _ in 0..3 {
                let mut next = Vec::new();
                for &s in &frontier {
                    for &l in &labels {
                        next.push(matcher.step(s, Some(l)));
                    }
                    next.push(matcher.step(s, None));
                }
                states.extend(next.iter().copied());
                frontier = next;
            }
            for &s in &states {
                let any = matcher.accepts_any_label(s);
                let mut listed = Vec::new();
                matcher.for_each_accepting_label(s, |l| listed.push(l));
                assert_eq!(
                    matcher.accepts(matcher.step(s, None)),
                    any,
                    "{expr}: unknown-label acceptance"
                );
                for &l in &labels {
                    let accepts = matcher.accepts(matcher.step(s, Some(l)));
                    assert_eq!(
                        accepts,
                        any || listed.contains(&l),
                        "{expr}: label {l:?} from {s:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn unknown_labels_only_pass_through_any_path() {
        let mut u = LabelUniverse::new();
        let a = u.compile(&p("a"));
        let any = u.compile(&p("//"));
        let any_a = u.compile(&p("//a"));
        let label_a = u.lookup("a");

        let m = StreamMatcher::new(&a);
        assert!(!m.accepts(m.step(m.start(), None)));
        assert!(m.step(m.start(), None).is_dead());

        let m = StreamMatcher::new(&any);
        assert!(m.accepts(m.step(m.start(), None)));

        let m = StreamMatcher::new(&any_a);
        let state = m.step(m.start(), None);
        assert!(!m.accepts(state), "unknown label is not `a`");
        assert!(m.accepts(m.step(state, label_a)), "`//` consumed it");
    }

    #[test]
    fn dead_states_stay_dead() {
        let mut u = LabelUniverse::new();
        let expr = u.compile(&p("a/b"));
        let b = u.lookup("b");
        let m = StreamMatcher::new(&expr);
        let dead = m.step(m.start(), b);
        assert!(dead.is_dead());
        assert!(m.step(dead, b).is_dead());
    }

    #[test]
    fn epsilon_accepts_only_the_empty_word() {
        let mut u = LabelUniverse::new();
        let a = u.intern("a");
        let m = StreamMatcher::new(&CompiledExpr::epsilon());
        assert!(m.accepts(m.start()));
        assert!(!m.accepts(m.step(m.start(), Some(a))));
    }
}
