//! The path language of *"Propagating XML Constraints to Relations"*.
//!
//! Section 2 of the paper adopts a common fragment of regular expressions and
//! XPath:
//!
//! ```text
//! P ::= ε | l | P/P | P//P
//! ```
//!
//! where `ε` is the empty path, `l` a node label, `/` concatenation (XPath
//! *child*) and `//` XPath *descendant-or-self* (it matches any path,
//! including the empty one).
//!
//! This crate provides:
//!
//! * [`PathExpr`] — path expressions, with parsing (`"//book/chapter"`),
//!   display, concatenation and splitting (needed by the *target-to-context*
//!   inference rule for XML keys);
//! * [`Path`] — concrete paths (label sequences), with membership testing
//!   `ρ ∈ P`;
//! * language **containment** `P ⊑ Q` ([`PathExpr::contained_in`]), the
//!   workhorse of XML key implication;
//! * a **compiled layer** ([`LabelUniverse`] — re-exported from
//!   `xmlprop_xmltree`, compiled through the [`PathCompiler`] extension
//!   trait — and [`CompiledExpr`]) that interns labels and precomputes the
//!   block decomposition so repeated containment and word-membership
//!   queries are allocation-free id-slice comparisons;
//! * **evaluation** `n[[P]]` over [`xmlprop_xmltree::Document`]s
//!   ([`evaluate`] / [`PathExpr::evaluate`]), plus the compiled
//!   [`CompiledExpr::evaluate`] over a prepared
//!   [`xmlprop_xmltree::DocIndex`] with reusable [`EvalScratch`] state;
//! * **incremental matching** for the streaming front end:
//!   [`StreamMatcher`] simulates a compiled expression as an NFA one label
//!   at a time, with `Copy` [`MatchState`] bitmasks that open-binding
//!   frontiers stack per document depth.
//!
//! # Example
//!
//! ```
//! use xmlprop_xmlpath::{Path, PathExpr};
//!
//! let p: PathExpr = "//book/chapter".parse().unwrap();
//! let q: PathExpr = "//chapter".parse().unwrap();
//! assert!(p.contained_in(&q));
//! assert!(!q.contained_in(&p));
//!
//! let rho = Path::from_labels(["book", "chapter"]);
//! assert!(p.matches(&rho));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compile;
mod containment;
mod eval;
mod expr;
mod path;
mod stream;

pub use compile::{CompiledAtom, CompiledExpr, LabelId, LabelUniverse, PathCompiler};
pub use containment::{contained_in, word_matches};
pub use eval::{evaluate, evaluate_from_root, EvalScratch};
pub use expr::{Atom, ParsePathError, PathExpr};
pub use path::Path;
pub use stream::{MatchState, StreamMatcher};
