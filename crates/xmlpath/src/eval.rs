//! Evaluation of path expressions over XML documents: `n[[P]]`.
//!
//! Two implementations live here:
//!
//! * the **string facade** [`evaluate`] — walks the [`Document`] directly,
//!   comparing labels as strings and deduplicating through `BTreeSet`s.
//!   Right for one-shot questions; it is also the baseline the `shred`
//!   bench and the engine-agreement property tests measure the compiled
//!   layer against.
//! * the **compiled engine** [`CompiledExpr::evaluate`] /
//!   [`CompiledExpr::evaluate_positions`] — runs over a prepared
//!   [`DocIndex`] with reusable scratch frontiers ([`EvalScratch`]): labels
//!   compare as `LabelId`s, a `//` step is a merge of contiguous DFS
//!   subtree ranges (duplicate-free and in document order by construction),
//!   and a `//label` step pair is answered from the label's posting list
//!   without materializing the intermediate descendant set.  Anything that
//!   evaluates many paths over one document (shred plans, key validation)
//!   should prepare a `DocIndex` once and go through this.

use crate::compile::{CompiledAtom, CompiledExpr};
use crate::expr::{Atom, PathExpr};
use std::collections::BTreeSet;
use xmlprop_xmltree::{DocIndex, Document, NodeId};

/// Evaluates `from[[expr]]`: the set of nodes reached from `from` by
/// following the path expression, in document order and without duplicates.
///
/// Semantics (Section 2 of the paper):
///
/// * `ε` reaches `{from}`;
/// * a label `l` reaches the children of `from` labelled `l` (this includes
///   attribute nodes when `l` is of the form `@name`, matching the paper's
///   uniform treatment of attributes as labelled children);
/// * `P/P'` composes;
/// * `//` reaches all descendants-or-self.
///
/// Results are in *document order* (DFS pre-order), which coincides with
/// `NodeId` order only for DFS-built documents — see
/// [`Document::ids_in_document_order`]; for mutated documents the result is
/// ranked by DFS position explicitly.
pub fn evaluate(doc: &Document, from: NodeId, expr: &PathExpr) -> Vec<NodeId> {
    let mut current: BTreeSet<NodeId> = BTreeSet::new();
    current.insert(from);
    for atom in expr.atoms() {
        let mut next = BTreeSet::new();
        match atom {
            Atom::Label(label) => {
                for &n in &current {
                    for c in doc.children_labelled(n, label) {
                        next.insert(c);
                    }
                }
            }
            Atom::AnyPath => {
                for &n in &current {
                    for d in doc.descendants_or_self(n) {
                        next.insert(d);
                    }
                }
            }
        }
        current = next;
        if current.is_empty() {
            break;
        }
    }
    let mut result: Vec<NodeId> = current.into_iter().collect();
    if result.len() > 1 && !doc.ids_in_document_order() {
        // The BTreeSet yields NodeId order; rank by DFS position when the
        // two orders have diverged.
        let mut rank = vec![0u32; doc.arena_len()];
        for (i, n) in doc.all_nodes().into_iter().enumerate() {
            rank[n.index()] = i as u32;
        }
        result.sort_unstable_by_key(|n| rank[n.index()]);
    }
    result
}

/// Evaluates `[[expr]]` from the document root (the paper's abbreviation
/// `[[P]]` for `root[[P]]`).
pub fn evaluate_from_root(doc: &Document, expr: &PathExpr) -> Vec<NodeId> {
    evaluate(doc, doc.root(), expr)
}

/// Reusable scratch state for [`CompiledExpr::evaluate_positions`]: the two
/// frontier vectors and the visited epoch-stamps that replace the per-atom
/// `BTreeSet`s of the string evaluator.  One scratch serves any number of
/// evaluations over documents of any size (the stamp table grows on
/// demand); hold one per loop instead of allocating per call.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    current: Vec<u32>,
    next: Vec<u32>,
    /// Per-position epoch stamp; a position is on the frontier being built
    /// iff its stamp equals the current epoch, so "visited" resets are O(1).
    stamps: Vec<u32>,
    epoch: u32,
}

impl EvalScratch {
    /// A fresh scratch.
    pub fn new() -> Self {
        EvalScratch::default()
    }

    /// Starts a new dedup epoch, clearing the stamp table only on wrap.
    fn bump_epoch(&mut self) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.fill(0);
            self.epoch = 1;
        }
        self.epoch
    }
}

impl CompiledExpr {
    /// Evaluates `from[[self]]` over a prepared index, in document order and
    /// without duplicates — the compiled counterpart of [`evaluate`].  The
    /// expression must have been compiled against the universe the index
    /// was built with (or an extension of it).
    ///
    /// Allocates its own [`EvalScratch`]; loops should hold one and call
    /// [`CompiledExpr::evaluate_positions`].
    pub fn evaluate(&self, index: &DocIndex, from: NodeId) -> Vec<NodeId> {
        let mut scratch = EvalScratch::new();
        let mut out = Vec::new();
        self.evaluate_positions(index, index.position(from), &mut scratch, &mut out);
        out.into_iter().map(|p| index.node_at(p)).collect()
    }

    /// The zero-allocation core of compiled evaluation: fills `out` with
    /// the DFS positions of `from[[self]]`, ascending (= document order,
    /// duplicate-free).  `from` is a DFS position ([`DocIndex::position`]).
    ///
    /// Per atom this does:
    ///
    /// * label step — scan the frontier's children comparing `LabelId`s,
    ///   with epoch-stamp dedup;
    /// * `//` step — sort the frontier and merge its contiguous subtree
    ///   ranges (nested ranges collapse into their outermost cover);
    /// * `//` immediately followed by a label — answer from the label's
    ///   posting list restricted to the merged ranges (excluding each
    ///   range's own root, whose parent lies outside the descendant set),
    ///   never materializing the intermediate descendants.
    pub fn evaluate_positions(
        &self,
        index: &DocIndex,
        from: u32,
        scratch: &mut EvalScratch,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        if scratch.stamps.len() < index.len() {
            scratch.stamps.resize(index.len(), 0);
        }
        scratch.current.clear();
        scratch.current.push(from);
        let atoms = self.atoms();
        let mut i = 0;
        while i < atoms.len() {
            if scratch.current.is_empty() {
                break;
            }
            scratch.next.clear();
            match atoms[i] {
                CompiledAtom::Label(label) => {
                    // The stamp check is defensive: frontiers are
                    // duplicate-free sets of distinct positions (so distinct
                    // parents contribute disjoint child sets), but the
                    // epoch-bitmap keeps the step safe under any future
                    // frontier producer.
                    let epoch = scratch.bump_epoch();
                    for &p in &scratch.current {
                        for c in index.children_at(p) {
                            if index.label_at(c) == label && scratch.stamps[c as usize] != epoch {
                                scratch.stamps[c as usize] = epoch;
                                scratch.next.push(c);
                            }
                        }
                    }
                }
                CompiledAtom::AnyPath => {
                    scratch.current.sort_unstable();
                    let fused = match atoms.get(i + 1) {
                        Some(CompiledAtom::Label(l)) => Some(*l),
                        _ => None,
                    };
                    let mut cover = 0u32;
                    if let Some(label) = fused {
                        let posts = index.postings(label);
                        for &p in &scratch.current {
                            if p < cover {
                                continue; // nested inside an emitted range
                            }
                            let end = index.subtree_end(p);
                            let lo = posts.partition_point(|&x| x <= p);
                            for &x in &posts[lo..] {
                                if x >= end {
                                    break;
                                }
                                scratch.next.push(x);
                            }
                            cover = end;
                        }
                        i += 1; // the label atom was consumed by the fusion
                    } else {
                        for &p in &scratch.current {
                            if p < cover {
                                continue;
                            }
                            let end = index.subtree_end(p);
                            scratch.next.extend(p..end);
                            cover = end;
                        }
                    }
                }
            }
            std::mem::swap(&mut scratch.current, &mut scratch.next);
            i += 1;
        }
        out.extend_from_slice(&scratch.current);
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::PathCompiler;
    use xmlprop_xmltree::sample::fig1;
    use xmlprop_xmltree::LabelUniverse;

    fn p(s: &str) -> PathExpr {
        s.parse().unwrap()
    }

    #[test]
    fn example_2_2_cardinalities() {
        // Example 2.2 of the paper: [[//book]] has 2 nodes, one book's
        // [[chapter]] has 2 nodes, [[//@number]] has 5 nodes.
        let doc = fig1();
        assert_eq!(evaluate_from_root(&doc, &p("//book")).len(), 2);
        let first_book = evaluate_from_root(&doc, &p("book"))[0];
        assert_eq!(evaluate(&doc, first_book, &p("chapter")).len(), 2);
        assert_eq!(evaluate_from_root(&doc, &p("//@number")).len(), 5);
    }

    #[test]
    fn epsilon_reaches_self() {
        let doc = fig1();
        let book = evaluate_from_root(&doc, &p("//book"))[0];
        assert_eq!(evaluate(&doc, book, &p("ε")), vec![book]);
    }

    #[test]
    fn attribute_steps() {
        let doc = fig1();
        let isbns = evaluate_from_root(&doc, &p("//book/@isbn"));
        assert_eq!(isbns.len(), 2);
        let values: Vec<_> = isbns.iter().map(|&n| doc.text_value(n).unwrap()).collect();
        assert_eq!(values, vec!["123", "234"]);
    }

    #[test]
    fn child_vs_descendant() {
        let doc = fig1();
        // section is never a child of book, only a descendant.
        assert!(evaluate_from_root(&doc, &p("//book/section")).is_empty());
        assert_eq!(evaluate_from_root(&doc, &p("//book//section")).len(), 2);
        assert_eq!(evaluate_from_root(&doc, &p("//section")).len(), 2);
        // name appears under chapters, sections and authors.
        assert_eq!(evaluate_from_root(&doc, &p("//name")).len(), 6);
        assert_eq!(evaluate_from_root(&doc, &p("//chapter/name")).len(), 3);
    }

    #[test]
    fn results_have_no_duplicates() {
        let doc = fig1();
        // `////name` normalizes to `//name`; even a non-normalized pipeline
        // with two AnyPath steps must not produce duplicates.
        let nodes = evaluate_from_root(
            &doc,
            &PathExpr::from_atoms(vec![Atom::AnyPath, Atom::Label("name".to_string())]),
        );
        let set: BTreeSet<_> = nodes.iter().copied().collect();
        assert_eq!(set.len(), nodes.len());
    }

    #[test]
    fn empty_result_for_missing_labels() {
        let doc = fig1();
        assert!(evaluate_from_root(&doc, &p("//magazine")).is_empty());
        assert!(evaluate_from_root(&doc, &p("book/title/@lang")).is_empty());
    }

    #[test]
    fn membership_consistency_with_evaluation() {
        // Every node reached by `expr` from the root has a root path that is
        // a member of the expression's language, and vice versa.
        let doc = fig1();
        for expr in [
            "//book",
            "//chapter",
            "//book/chapter/@number",
            "//name",
            "book//name",
        ] {
            let expr = p(expr);
            let reached: BTreeSet<NodeId> = evaluate_from_root(&doc, &expr).into_iter().collect();
            for n in doc.all_nodes() {
                let rho = crate::Path::from_labels(doc.path_from_root(n));
                assert_eq!(
                    reached.contains(&n),
                    expr.matches(&rho),
                    "node {n} path {rho} vs expr {expr}"
                );
            }
        }
    }

    /// Builds a document where NodeId order and document order diverge.
    fn shuffled_doc() -> Document {
        let mut doc = Document::new("r");
        let a1 = doc.add_element(doc.root(), "a");
        let a2 = doc.add_element(doc.root(), "a");
        // Appended after a2, but sits under a1 — earlier in document order.
        let b1 = doc.add_element(a1, "b");
        doc.add_element(a2, "b");
        doc.add_element(b1, "c");
        doc.add_attribute(a1, "x", "late"); // attribute created last of all
        doc
    }

    #[test]
    fn results_are_in_document_order_not_node_id_order() {
        let doc = shuffled_doc();
        assert!(!doc.ids_in_document_order());
        // DFS ranks via the prepared index pin the expected order.
        let mut u = LabelUniverse::new();
        let index = DocIndex::build(&doc, &mut u);
        for expr in ["//b", "//", "a/b", "//@x", "a//c", "//c"] {
            let nodes = evaluate_from_root(&doc, &p(expr));
            let ranks: Vec<u32> = nodes.iter().map(|&n| index.position(n)).collect();
            assert!(
                ranks.windows(2).all(|w| w[0] < w[1]),
                "{expr}: {nodes:?} not in document order (ranks {ranks:?})"
            );
        }
    }

    #[test]
    fn compiled_evaluation_agrees_with_the_string_facade() {
        for doc in [fig1(), shuffled_doc()] {
            let mut u = LabelUniverse::new();
            let index = DocIndex::build(&doc, &mut u);
            let mut scratch = EvalScratch::new();
            let mut out = Vec::new();
            for expr in [
                "ε",
                "//",
                "//book",
                "book",
                "//book/chapter",
                "//book//section",
                "//name",
                "//chapter/name",
                "//@number",
                "//book/@isbn",
                "book/title/@lang",
                "//magazine",
                "a/b",
                "//b",
                "//b/c",
                "a//c",
                "//@x",
                "a//",
                "//a//",
                "//a//b",
            ] {
                let expr = p(expr);
                let compiled = u.compile(&expr);
                // Convenience entry point...
                assert_eq!(
                    compiled.evaluate(&index, doc.root()),
                    evaluate_from_root(&doc, &expr),
                    "{expr}"
                );
                // ...and the scratch-reusing core, from every start node.
                for from in doc.all_nodes() {
                    compiled.evaluate_positions(
                        &index,
                        index.position(from),
                        &mut scratch,
                        &mut out,
                    );
                    let nodes: Vec<NodeId> = out.iter().map(|&pos| index.node_at(pos)).collect();
                    assert_eq!(nodes, evaluate(&doc, from, &expr), "{expr} from {from}");
                }
            }
        }
    }

    #[test]
    fn trailing_wildcard_materializes_descendants() {
        let doc = fig1();
        let mut u = LabelUniverse::new();
        let index = DocIndex::build(&doc, &mut u);
        let compiled = u.compile(&p("//book//"));
        let nodes = compiled.evaluate(&index, doc.root());
        assert_eq!(nodes, evaluate_from_root(&doc, &p("//book//")));
        assert!(nodes.len() > 2);
    }

    #[test]
    fn unknown_labels_evaluate_to_nothing() {
        let doc = fig1();
        let mut u = LabelUniverse::new();
        let index = DocIndex::build(&doc, &mut u);
        // Compiled after the index was built: the posting table has no slot.
        let compiled = u.compile(&p("//nothere/below"));
        assert!(compiled.evaluate(&index, doc.root()).is_empty());
    }
}
