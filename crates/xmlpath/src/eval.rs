//! Evaluation of path expressions over XML documents: `n[[P]]`.

use crate::expr::{Atom, PathExpr};
use std::collections::BTreeSet;
use xmlprop_xmltree::{Document, NodeId};

/// Evaluates `from[[expr]]`: the set of nodes reached from `from` by
/// following the path expression, in document order and without duplicates.
///
/// Semantics (Section 2 of the paper):
///
/// * `ε` reaches `{from}`;
/// * a label `l` reaches the children of `from` labelled `l` (this includes
///   attribute nodes when `l` is of the form `@name`, matching the paper's
///   uniform treatment of attributes as labelled children);
/// * `P/P'` composes;
/// * `//` reaches all descendants-or-self.
pub fn evaluate(doc: &Document, from: NodeId, expr: &PathExpr) -> Vec<NodeId> {
    let mut current: BTreeSet<NodeId> = BTreeSet::new();
    current.insert(from);
    for atom in expr.atoms() {
        let mut next = BTreeSet::new();
        match atom {
            Atom::Label(label) => {
                for &n in &current {
                    for c in doc.children_labelled(n, label) {
                        next.insert(c);
                    }
                }
            }
            Atom::AnyPath => {
                for &n in &current {
                    for d in doc.descendants_or_self(n) {
                        next.insert(d);
                    }
                }
            }
        }
        current = next;
        if current.is_empty() {
            break;
        }
    }
    current.into_iter().collect()
}

/// Evaluates `[[expr]]` from the document root (the paper's abbreviation
/// `[[P]]` for `root[[P]]`).
pub fn evaluate_from_root(doc: &Document, expr: &PathExpr) -> Vec<NodeId> {
    evaluate(doc, doc.root(), expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlprop_xmltree::sample::fig1;

    fn p(s: &str) -> PathExpr {
        s.parse().unwrap()
    }

    #[test]
    fn example_2_2_cardinalities() {
        // Example 2.2 of the paper: [[//book]] has 2 nodes, one book's
        // [[chapter]] has 2 nodes, [[//@number]] has 5 nodes.
        let doc = fig1();
        assert_eq!(evaluate_from_root(&doc, &p("//book")).len(), 2);
        let first_book = evaluate_from_root(&doc, &p("book"))[0];
        assert_eq!(evaluate(&doc, first_book, &p("chapter")).len(), 2);
        assert_eq!(evaluate_from_root(&doc, &p("//@number")).len(), 5);
    }

    #[test]
    fn epsilon_reaches_self() {
        let doc = fig1();
        let book = evaluate_from_root(&doc, &p("//book"))[0];
        assert_eq!(evaluate(&doc, book, &p("ε")), vec![book]);
    }

    #[test]
    fn attribute_steps() {
        let doc = fig1();
        let isbns = evaluate_from_root(&doc, &p("//book/@isbn"));
        assert_eq!(isbns.len(), 2);
        let values: Vec<_> = isbns.iter().map(|&n| doc.text_value(n).unwrap()).collect();
        assert_eq!(values, vec!["123", "234"]);
    }

    #[test]
    fn child_vs_descendant() {
        let doc = fig1();
        // section is never a child of book, only a descendant.
        assert!(evaluate_from_root(&doc, &p("//book/section")).is_empty());
        assert_eq!(evaluate_from_root(&doc, &p("//book//section")).len(), 2);
        assert_eq!(evaluate_from_root(&doc, &p("//section")).len(), 2);
        // name appears under chapters, sections and authors.
        assert_eq!(evaluate_from_root(&doc, &p("//name")).len(), 6);
        assert_eq!(evaluate_from_root(&doc, &p("//chapter/name")).len(), 3);
    }

    #[test]
    fn results_have_no_duplicates() {
        let doc = fig1();
        // `////name` normalizes to `//name`; even a non-normalized pipeline
        // with two AnyPath steps must not produce duplicates.
        let nodes = evaluate_from_root(
            &doc,
            &PathExpr::from_atoms(vec![Atom::AnyPath, Atom::Label("name".to_string())]),
        );
        let set: BTreeSet<_> = nodes.iter().copied().collect();
        assert_eq!(set.len(), nodes.len());
    }

    #[test]
    fn empty_result_for_missing_labels() {
        let doc = fig1();
        assert!(evaluate_from_root(&doc, &p("//magazine")).is_empty());
        assert!(evaluate_from_root(&doc, &p("book/title/@lang")).is_empty());
    }

    #[test]
    fn membership_consistency_with_evaluation() {
        // Every node reached by `expr` from the root has a root path that is
        // a member of the expression's language, and vice versa.
        let doc = fig1();
        for expr in [
            "//book",
            "//chapter",
            "//book/chapter/@number",
            "//name",
            "book//name",
        ] {
            let expr = p(expr);
            let reached: BTreeSet<NodeId> = evaluate_from_root(&doc, &expr).into_iter().collect();
            for n in doc.all_nodes() {
                let rho = crate::Path::from_labels(doc.path_from_root(n));
                assert_eq!(
                    reached.contains(&n),
                    expr.matches(&rho),
                    "node {n} path {rho} vs expr {expr}"
                );
            }
        }
    }
}
